package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Fuzz targets for the storage engine's durable formats. The contract under
// test: arbitrarily corrupted or truncated bytes must produce an error at
// open — never a panic, and never a table that later serves wrong values.
// parseSSTable front-loads all validation precisely so these hold.

// fuzzTableBytes builds a small valid table and returns its raw bytes —
// the seed the fuzzer mutates from.
func fuzzTableBytes(tb testing.TB, bloom bool) []byte {
	tb.Helper()
	dir := tb.TempDir()
	var entries []sstEntry
	seq := uint64(100)
	for i := 0; i < 40; i++ {
		user := []byte(fmt.Sprintf("key-%03d", i))
		kind := kindValue
		if i%7 == 0 {
			kind = kindDelete
		}
		entries = append(entries, sstEntry{
			key: internalKey{user: user, seq: seq, kind: kind},
			val: []byte(fmt.Sprintf("value-%d", i)),
		})
		if i%3 == 0 { // second, older version of some keys
			entries = append(entries, sstEntry{
				key: internalKey{user: user, seq: seq - 50, kind: kindValue},
				val: []byte("old"),
			})
		}
		seq++
	}
	path := filepath.Join(dir, "seed.sst")
	if err := writeSSTable(path, entries, defaultBloomBitsPerKey, !bloom); err != nil {
		tb.Fatalf("write seed table: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatalf("read seed table: %v", err)
	}
	return raw
}

func FuzzSSTableOpen(f *testing.F) {
	seedV2 := fuzzTableBytes(f, true)
	seedV1NoBloom := fuzzTableBytes(f, false)
	f.Add(seedV2)
	f.Add(seedV1NoBloom)
	// Truncations at interesting boundaries.
	for _, n := range []int{0, 1, 7, len(seedV2) / 2, len(seedV2) - 1, len(seedV2) - footerV2Size, len(seedV2) - footerV2Size + 4} {
		if n >= 0 && n <= len(seedV2) {
			f.Add(seedV2[:n])
		}
	}
	// Single-byte corruptions in each region: entries, index, bloom, footer.
	for _, off := range []int{3, len(seedV2) / 2, len(seedV2) - footerV2Size + 1, len(seedV2) - 9} {
		mut := append([]byte(nil), seedV2...)
		mut[off] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := parseSSTable(data, 1, 0)
		if err != nil {
			return // rejected: the only acceptable failure mode
		}
		// Accepted tables must be fully servable: iterate everything in
		// strict order and point-read every key without panicking.
		it := tab.iterator()
		n := 0
		var prev internalKey
		for it.SeekToFirst(); it.Valid(); it.Next() {
			ik, _ := it.Entry()
			if n > 0 && compareInternal(prev, ik) >= 0 {
				t.Fatalf("accepted table iterates out of order")
			}
			prev = internalKey{user: append([]byte(nil), ik.user...), seq: ik.seq, kind: ik.kind}
			if _, _, ok := tab.get(ik.user, ^uint64(0)); !ok {
				t.Fatalf("accepted table misses its own key %q", ik.user)
			}
			it2 := tab.iterator()
			it2.Seek(ik.user)
			if !it2.Valid() {
				t.Fatalf("Seek(%q) exhausted on accepted table", ik.user)
			}
			if got, _ := it2.Entry(); !bytes.Equal(got.user, ik.user) {
				t.Fatalf("Seek(%q) landed on %q", ik.user, got.user)
			}
			n++
		}
		if n != tab.count {
			t.Fatalf("iterated %d entries, footer claims %d", n, tab.count)
		}
	})
}

func FuzzBloomDecode(f *testing.F) {
	keys := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma-longer-key")}
	f.Add(buildBloom(keys, 10))
	f.Add(buildBloom(nil, 10))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0x00})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 31})
	f.Fuzz(func(t *testing.T, data []byte) {
		filter, err := decodeBloom(data)
		if err != nil {
			return
		}
		// A decoded filter must answer membership queries without panicking,
		// for any probe key including empty and binary ones.
		for _, probe := range [][]byte{nil, {}, []byte("alpha"), {0x00, 0xff, 0x7f}, bytes.Repeat([]byte("x"), 100)} {
			bloomMayContain(filter, probe)
		}
	})
}

// TestFuzzSeedsParse keeps the fuzz seeds honest in a plain `go test` run:
// the valid seeds must parse, the corrupt ones must be rejected.
func TestFuzzSeedsParse(t *testing.T) {
	seed := fuzzTableBytes(t, true)
	if _, err := parseSSTable(seed, 1, 0); err != nil {
		t.Fatalf("valid v2 seed rejected: %v", err)
	}
	noBloom := fuzzTableBytes(t, false)
	if _, err := parseSSTable(noBloom, 1, 0); err != nil {
		t.Fatalf("valid bloomless seed rejected: %v", err)
	}
	for cut := 0; cut < len(seed); cut += 13 {
		if _, err := parseSSTable(seed[:cut], 1, 0); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for off := 0; off < len(seed); off += 11 {
		mut := append([]byte(nil), seed...)
		mut[off] ^= 0x55
		tab, err := parseSSTable(mut, 1, 0)
		if err != nil {
			continue
		}
		// A flip the CRC cannot see (e.g. inside the footer's own CRC field
		// region is covered; nothing here should be accepted silently except
		// a flip that produces another fully-consistent table, which a
		// single XOR cannot).
		_ = tab
		t.Fatalf("corruption at offset %d accepted", off)
	}
}

package kvstore

import (
	"container/list"
	"sync"
)

// recordCache is a byte-capacity-bounded LRU cache over decoded table
// records, shared by every SSTable of a DB. It caches the newest version a
// table holds for a user key — tables are immutable, so a cached entry never
// goes stale; entries for compacted-away tables simply age out.
//
// All methods are safe for concurrent use and nil-safe (a nil cache caches
// nothing), so tables opened outside a DB (tests, fuzzing) need no wiring.
type recordCache struct {
	mu   sync.Mutex
	cap  int
	size int
	ll   *list.List // front = most recently used
	m    map[cacheKey]*list.Element
}

type cacheKey struct {
	num  uint64 // table file number
	user string
}

// cachedRecord is the newest version of one user key within one table.
type cachedRecord struct {
	seq  uint64
	kind entryKind
	val  []byte // owned by the cache
}

type cacheEntry struct {
	key cacheKey
	rec cachedRecord
}

// cacheEntryOverhead approximates per-entry bookkeeping bytes (list element,
// map slot, struct headers) charged against the capacity.
const cacheEntryOverhead = 64

func newRecordCache(capBytes int) *recordCache {
	if capBytes <= 0 {
		return nil
	}
	return &recordCache{cap: capBytes, ll: list.New(), m: make(map[cacheKey]*list.Element)}
}

func (c *recordCache) get(num uint64, user []byte) (cachedRecord, bool) {
	if c == nil {
		return cachedRecord{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// The map lookup allocates nothing: string(user) in a map index
	// expression does not escape.
	el, ok := c.m[cacheKey{num: num, user: string(user)}]
	if !ok {
		return cachedRecord{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rec, true
}

// put inserts (or refreshes) the newest version of user within table num.
// The value bytes are copied; the cache owns its memory.
func (c *recordCache) put(num uint64, user []byte, seq uint64, kind entryKind, val []byte) {
	if c == nil {
		return
	}
	rec := cachedRecord{seq: seq, kind: kind, val: append([]byte(nil), val...)}
	key := cacheKey{num: num, user: string(user)}
	cost := len(key.user) + len(rec.val) + cacheEntryOverhead
	if cost > c.cap {
		return // larger than the whole cache: not worth evicting everything
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		// Same immutable table, same key: the record is identical. Refresh
		// recency only.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, rec: rec})
	c.m[key] = el
	c.size += cost
	for c.size > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.m, ent.key)
		c.size -= len(ent.key.user) + len(ent.rec.val) + cacheEntryOverhead
	}
}

// lenEntries returns the number of cached records (tests and stats).
func (c *recordCache) lenEntries() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

package shard

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"grub/internal/chain"
	"grub/internal/core"
	"grub/internal/gas"
	"grub/internal/policy"
	"grub/internal/sim"
	"grub/internal/workload/ycsb"
)

const persistEpochOps = 8

// persistOptions builds the standard persistent configuration for a test
// store at dir: memoryless K=2 feeds (matching newTestFeed) with the restore
// callback the gateway would supply.
func persistOptions(dir string, shards, snapshotEvery int, record bool) Options {
	return Options{
		Shards:      shards,
		RecordTrace: record,
		Persist: &PersistOptions{
			Dir:           dir,
			SnapshotEvery: snapshotEvery,
			Restore: func(_ int, snap *core.FeedSnapshot) (*core.Feed, error) {
				c := chain.New(sim.NewClock(0), chain.DefaultParams(), gas.DefaultSchedule())
				return core.RestoreFeed(c, policy.NewMemoryless(2), core.Options{EpochOps: persistEpochOps}, snap)
			},
		},
	}
}

func newPersistent(t *testing.T, dir string, shards, snapshotEvery int, record bool) *ShardedFeed {
	t.Helper()
	sf, err := New(persistOptions(dir, shards, snapshotEvery, record),
		func(int) (*core.Feed, error) { return newTestFeed(persistEpochOps) })
	if err != nil {
		t.Fatal(err)
	}
	return sf
}

// persistBatches generates a deterministic sequence of YCSB-A batches, the
// same for every feed instance a test drives.
func persistBatches(n, opsPer int, seed uint64) [][]core.Op {
	d := ycsb.NewDriver(ycsb.WorkloadA, 24, 32, seed)
	out := make([][]core.Op, n)
	for i := range out {
		out[i] = core.FromWorkload(d.Generate(opsPer))
	}
	return out
}

// keysOf collects every key the batches touch, for the final read-back
// comparison.
func keysOf(batches [][]core.Op) []core.Op {
	seen := make(map[string]bool)
	var reads []core.Op
	for _, b := range batches {
		for _, op := range b {
			if !seen[op.Key] {
				seen[op.Key] = true
				reads = append(reads, core.Op{Type: "read", Key: op.Key})
			}
		}
	}
	return reads
}

func requireSameResults(t *testing.T, label string, got, want []core.OpResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || got[i].Found != want[i].Found ||
			!bytes.Equal(got[i].Value, want[i].Value) || got[i].Err != want[i].Err {
			t.Fatalf("%s: result %d diverges: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestPersistCrashRecoveryEquivalence is the headline durability result:
// kill the engine mid-load at several points, reopen the store, finish the
// load, and the recovered feed must match an uninterrupted single-process
// run of the same batch sequence exactly — every key's value, cumulative
// gas, delivered counts, chain height. Exercised with and without
// intervening snapshots (snapshot restore vs pure log replay).
func TestPersistCrashRecoveryEquivalence(t *testing.T) {
	const totalBatches = 16
	for _, shards := range []int{1, 4} {
		for _, snapEvery := range []int{0, 3} {
			for _, cut := range []int{3, 8, 13} {
				name := fmt.Sprintf("shards=%d/snapEvery=%d/cut=%d", shards, snapEvery, cut)
				t.Run(name, func(t *testing.T) {
					batches := persistBatches(totalBatches, 8, 42)

					// The uninterrupted reference: same engine, no
					// persistence, one process, all batches.
					ref := newSharded(t, shards, persistEpochOps, false)
					for _, b := range batches {
						if _, err := ref.Do(b); err != nil {
							t.Fatal(err)
						}
					}

					dir := t.TempDir()
					crashed := newPersistent(t, dir, shards, snapEvery, false)
					for _, b := range batches[:cut] {
						if _, err := crashed.Do(b); err != nil {
							t.Fatal(err)
						}
					}
					crashed.Kill() // no final snapshot, no flush

					recovered := newPersistent(t, dir, shards, snapEvery, false)
					defer recovered.Close()
					for _, b := range batches[cut:] {
						if _, err := recovered.Do(b); err != nil {
							t.Fatal(err)
						}
					}

					// Same keys, same values: an identical read-back batch
					// must answer identically (and mutate both identically).
					readback := keysOf(batches)
					gotR, err := recovered.Do(readback)
					if err != nil {
						t.Fatal(err)
					}
					wantR, err := ref.Do(readback)
					if err != nil {
						t.Fatal(err)
					}
					requireSameResults(t, "read-back", gotR, wantR)

					// Same cumulative gas, delivered counts, records,
					// replicas, chain position — per shard and aggregate.
					got, err := recovered.Stats()
					if err != nil {
						t.Fatal(err)
					}
					want, err := ref.Stats()
					if err != nil {
						t.Fatal(err)
					}
					if got.Feed != want.Feed {
						t.Errorf("aggregate stats diverge:\n got %+v\nwant %+v", got.Feed, want.Feed)
					}
					if got.Ops != want.Ops {
						t.Errorf("ops = %d, want %d", got.Ops, want.Ops)
					}
					for i := range want.PerShard {
						if got.PerShard[i].Feed != want.PerShard[i].Feed {
							t.Errorf("shard %d stats diverge:\n got %+v\nwant %+v",
								i, got.PerShard[i].Feed, want.PerShard[i].Feed)
						}
					}
					if snapEvery > 0 {
						if got.Persist == nil || got.Persist.Snapshots == 0 {
							t.Errorf("expected snapshots to have been taken: %+v", got.Persist)
						}
					}
				})
			}
		}
	}
}

// TestPersistConcurrentCrashRecovery drives a persistent sharded feed from
// many concurrent clients, crashes it, recovers, keeps driving, and then
// requires the recovered trace to replay exactly — PR 2's equivalence
// discipline extended across a process death. Run under -race this is also
// the data-race check on the persistence hooks.
func TestPersistConcurrentCrashRecovery(t *testing.T) {
	const (
		shards   = 4
		clients  = 16
		batchesA = 3 // per client before the crash
		batchesB = 2 // per client after recovery
	)
	dir := t.TempDir()
	hammer := func(sf *ShardedFeed, rounds, seedBase int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				d := ycsb.NewDriver(ycsb.WorkloadA, 24, 32, uint64(seedBase+ci))
				for b := 0; b < rounds; b++ {
					if _, err := sf.Do(core.FromWorkload(d.Generate(8))); err != nil {
						errs <- err
						return
					}
				}
			}(ci)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	crashed := newPersistent(t, dir, shards, 0, true)
	hammer(crashed, batchesA, 1000)
	crashed.Kill()

	recovered := newPersistent(t, dir, shards, 0, true)
	defer recovered.Close()
	hammer(recovered, batchesB, 5000)

	// The recovered feed's trace is the full serialized order: the log
	// replayed at recovery plus everything applied since. Replaying it per
	// shard through fresh feeds must reproduce results and stats exactly.
	traces, err := recovered.ShardTraces()
	if err != nil {
		t.Fatal(err)
	}
	_, recorded, err := recovered.TraceResults()
	if err != nil {
		t.Fatal(err)
	}
	got, err := recovered.Stats()
	if err != nil {
		t.Fatal(err)
	}
	wantOps := clients * (batchesA + batchesB) * 8
	if got.Ops != wantOps {
		t.Errorf("ops = %d, want %d", got.Ops, wantOps)
	}
	ri := 0
	var wantAgg core.FeedStats
	for sh, trace := range traces {
		ref, err := newTestFeed(persistEpochOps)
		if err != nil {
			t.Fatal(err)
		}
		replayed := core.ApplyOps(ref, trace)
		for j, res := range replayed {
			rec := recorded[ri]
			ri++
			if res.Key != rec.Key || res.Found != rec.Found ||
				!bytes.Equal(res.Value, rec.Value) || res.Err != rec.Err {
				t.Fatalf("shard %d op %d: replay %+v != recorded %+v", sh, j, res, rec)
			}
		}
		want := ref.Stats()
		if got.PerShard[sh].Feed != want {
			t.Errorf("shard %d stats diverge from replay:\n got %+v\nwant %+v", sh, got.PerShard[sh].Feed, want)
		}
		wantAgg = addFeedStats(wantAgg, want)
	}
	if got.Feed != wantAgg {
		t.Errorf("aggregate stats diverge from summed replays:\n got %+v\nwant %+v", got.Feed, wantAgg)
	}
}

// TestPersistTornTailRecovery kills the engine, then tears the final WAL
// record of one shard's store (a crash mid-write). Recovery must come up on
// the intact logged prefix and still replay-match exactly.
func TestPersistTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	batches := persistBatches(6, 8, 7)
	crashed := newPersistent(t, dir, 1, 0, false)
	for _, b := range batches {
		if _, err := crashed.Do(b); err != nil {
			t.Fatal(err)
		}
	}
	crashed.Kill()

	wal := filepath.Join(dir, "shard-000", "wal.log")
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 10 {
		t.Fatalf("wal too small to tear: %d bytes", fi.Size())
	}
	if err := os.Truncate(wal, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	recovered := newPersistent(t, dir, 1, 0, true)
	defer recovered.Close()
	trace, err := recovered.Trace()
	if err != nil {
		t.Fatal(err)
	}
	// The torn record is the last logged batch: the recovered trace must be
	// a whole-batch prefix, one batch short.
	if want := (len(batches) - 1) * 8; len(trace) != want {
		t.Fatalf("recovered trace has %d ops, want %d (one torn batch dropped)", len(trace), want)
	}
	ref, err := newTestFeed(persistEpochOps)
	if err != nil {
		t.Fatal(err)
	}
	core.ApplyOps(ref, trace)
	st, err := recovered.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.PerShard[0].Feed != ref.Stats() {
		t.Errorf("recovered state diverges from replay of intact prefix:\n got %+v\nwant %+v",
			st.PerShard[0].Feed, ref.Stats())
	}
}

// TestPersistSnapshotCompaction checks the snapshot cadence: the op log is
// pruned at each snapshot, counters survive a graceful close/reopen, and
// explicit Snapshot works (and is refused on an in-memory feed).
func TestPersistSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	batches := persistBatches(7, 8, 11)
	sf := newPersistent(t, dir, 2, 2, false)
	for _, b := range batches {
		if _, err := sf.Do(b); err != nil {
			t.Fatal(err)
		}
	}
	st, err := sf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Persist == nil {
		t.Fatal("persistent feed reports no persist stats")
	}
	if st.Persist.Snapshots == 0 {
		t.Errorf("no automatic snapshots after %d batches at cadence 2", len(batches))
	}
	ps, err := sf.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if ps.LoggedBatches != 0 {
		t.Errorf("log not compacted by explicit snapshot: %+v", ps)
	}
	sf.Close()

	reopened := newPersistent(t, dir, 2, 2, false)
	defer reopened.Close()
	st2, err := reopened.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Ops != st.Ops || st2.Feed != st.Feed {
		t.Errorf("counters did not survive graceful close/reopen:\n got %+v ops=%d\nwant %+v ops=%d",
			st2.Feed, st2.Ops, st.Feed, st.Ops)
	}
	if st2.Persist.Snapshots < st.Persist.Snapshots {
		t.Errorf("snapshot count went backwards: %d -> %d", st.Persist.Snapshots, st2.Persist.Snapshots)
	}

	mem := newSharded(t, 1, persistEpochOps, false)
	if _, err := mem.Snapshot(); !errors.Is(err, ErrNotPersistent) {
		t.Errorf("Snapshot on in-memory feed = %v, want ErrNotPersistent", err)
	}
}

var _ = gas.Gas(0) // keep the import: shard stats reason in gas units

package shard

import (
	"errors"
	"fmt"
	"testing"

	"grub/internal/chain"
	"grub/internal/core"
	"grub/internal/gas"
	"grub/internal/policy"
	"grub/internal/repl"
	"grub/internal/sim"
)

// restoreTestFeed mirrors newTestFeed for the replication bootstrap path.
func restoreTestFeed(epochOps int) func(int, *core.FeedSnapshot) (*core.Feed, error) {
	return func(_ int, snap *core.FeedSnapshot) (*core.Feed, error) {
		c := chain.New(sim.NewClock(0), chain.DefaultParams(), gas.DefaultSchedule())
		return core.RestoreFeed(c, policy.NewMemoryless(2), core.Options{EpochOps: epochOps}, snap)
	}
}

func newReplicating(t *testing.T, n, epochOps int) *ShardedFeed {
	t.Helper()
	sf, err := New(
		Options{Shards: n, Views: true, Repl: true, Restore: restoreTestFeed(epochOps)},
		func(int) (*core.Feed, error) { return newTestFeed(epochOps) },
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sf.Close)
	return sf
}

// driveLeader applies mixed batches and returns the total batch count.
func driveLeader(t *testing.T, sf *ShardedFeed, batches int) {
	t.Helper()
	for b := 0; b < batches; b++ {
		ops := make([]core.Op, 0, 8)
		for i := 0; i < 6; i++ {
			ops = append(ops, core.Op{Type: "write", Key: fmt.Sprintf("key%03d", (b*7+i*13)%64), Value: []byte(fmt.Sprintf("v%d-%d", b, i))})
		}
		ops = append(ops,
			core.Op{Type: "read", Key: fmt.Sprintf("key%03d", b%64)},
			core.Op{Type: "read", Key: "missing"},
		)
		if _, err := sf.Do(ops); err != nil {
			t.Fatal(err)
		}
	}
}

// ship replays every retained log entry from leader to follower, per shard,
// and returns the per-shard applied counts.
func ship(t *testing.T, leader, follower *ShardedFeed) {
	t.Helper()
	for sh := 0; sh < leader.Shards(); sh++ {
		cursor, err := follower.Seq(sh)
		if err != nil {
			t.Fatal(err)
		}
		for {
			page, err := leader.ReplPage(sh, cursor, 4)
			if err != nil {
				t.Fatal(err)
			}
			if page.SnapshotRequired {
				t.Fatalf("shard %d: unexpected snapshot bootstrap (cursor %d, floor %d)", sh, cursor, page.FloorSeq)
			}
			if len(page.Entries) == 0 {
				break
			}
			for _, e := range page.Entries {
				if err := follower.Apply(sh, e); err != nil {
					t.Fatalf("shard %d apply seq %d: %v", sh, e.Seq, err)
				}
				cursor = e.Seq
			}
		}
	}
}

// assertSameRoots compares two feeds' per-shard anchors via their engines.
func assertSameRoots(t *testing.T, a, b *ShardedFeed) {
	t.Helper()
	ra, err := a.Engine().Roots()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Engine().Roots()
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("shard counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Root != rb[i].Root || ra[i].Count != rb[i].Count || ra[i].Seq != rb[i].Seq {
			t.Errorf("shard %d anchors differ: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

// TestReplicatedApplyMirrorsLeader ships a leader's log batch by batch into
// a follower engine and checks the follower converges to identical
// per-shard anchors (root, count, seq).
func TestReplicatedApplyMirrorsLeader(t *testing.T) {
	leader := newReplicating(t, 4, 8)
	follower := newReplicating(t, 4, 8)
	driveLeader(t, leader, 12)
	ship(t, leader, follower)
	assertSameRoots(t, leader, follower)

	// More writes, incremental ship from the follower's cursor.
	driveLeader(t, leader, 5)
	ship(t, leader, follower)
	assertSameRoots(t, leader, follower)
}

// TestReplicatedApplyDivergenceHalts flips one byte in a shipped batch: the
// anchor check must reject it with a DivergenceError, halt that shard
// permanently, and keep the previously published view serving.
func TestReplicatedApplyDivergenceHalts(t *testing.T) {
	leader := newReplicating(t, 1, 8)
	follower := newReplicating(t, 1, 8)
	driveLeader(t, leader, 4)
	ship(t, leader, follower)

	viewBefore, err := follower.Engine().ViewOf(0)
	if err != nil {
		t.Fatal(err)
	}

	driveLeader(t, leader, 1)
	page, err := leader.ReplPage(0, viewBefore.Seq(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 1 {
		t.Fatalf("expected 1 fresh entry, got %d", len(page.Entries))
	}
	tampered := page.Entries[0]
	tampered.Ops = append([]core.Op(nil), tampered.Ops...)
	tampered.Ops[0].Value = append([]byte(nil), tampered.Ops[0].Value...)
	tampered.Ops[0].Value[0] ^= 0x01 // the flipped byte

	err = follower.Apply(0, tampered)
	if !errors.Is(err, repl.ErrDivergence) {
		t.Fatalf("tampered batch: err = %v, want ErrDivergence", err)
	}
	var div *repl.DivergenceError
	if !errors.As(err, &div) || div.Seq != tampered.Seq {
		t.Fatalf("divergence detail missing: %v", err)
	}

	// The shard is halted: even the genuine batch is refused now.
	if err := follower.Apply(0, page.Entries[0]); !errors.Is(err, repl.ErrDivergence) {
		t.Fatalf("apply after halt: err = %v, want ErrDivergence", err)
	}
	st, err := follower.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.PerShard[0].Diverged == "" {
		t.Error("divergence not surfaced in shard stats")
	}

	// The forked state was never published: the view still serves the
	// last verified root.
	viewAfter, err := follower.Engine().ViewOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if viewAfter.Root() != viewBefore.Root() || viewAfter.Seq() != viewBefore.Seq() {
		t.Errorf("view advanced past divergence: seq %d root %s", viewAfter.Seq(), viewAfter.Root())
	}
}

// TestDivergedShardNeverPersistsFork pins the durability side of the
// divergence halt: after a refused batch, every path that could make the
// forked in-memory state durable or export it — client writes, explicit
// snapshots, bootstrap snapshots, the graceful-shutdown flush — is refused,
// and a restart recovers exactly the last verified state, which can then
// resume replicating.
func TestDivergedShardNeverPersistsFork(t *testing.T) {
	leader := newReplicating(t, 1, 8)
	driveLeader(t, leader, 5)
	page, err := leader.ReplPage(0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	open := func() *ShardedFeed {
		sf, err := New(
			Options{
				Shards: 1, Views: true, Repl: true,
				Restore: restoreTestFeed(8),
				Persist: &PersistOptions{Dir: dir, Restore: restoreTestFeed(8)},
			},
			func(int) (*core.Feed, error) { return newTestFeed(8) },
		)
		if err != nil {
			t.Fatal(err)
		}
		return sf
	}
	follower := open()
	for _, e := range page.Entries[:4] {
		if err := follower.Apply(0, e); err != nil {
			t.Fatal(err)
		}
	}
	verified, err := follower.Engine().ViewOf(0)
	if err != nil {
		t.Fatal(err)
	}

	tampered := page.Entries[4]
	tampered.Ops = append([]core.Op(nil), tampered.Ops...)
	tampered.Ops[0].Value = append([]byte(nil), tampered.Ops[0].Value...)
	tampered.Ops[0].Value[0] ^= 0x01
	if err := follower.Apply(0, tampered); !errors.Is(err, repl.ErrDivergence) {
		t.Fatalf("tampered apply: %v", err)
	}

	// Every escape hatch for the forked state is closed.
	if _, err := follower.Do([]core.Op{{Type: "write", Key: "x", Value: []byte("y")}}); !errors.Is(err, repl.ErrDivergence) {
		t.Errorf("write on diverged shard: err = %v, want ErrDivergence", err)
	}
	if _, err := follower.Snapshot(); !errors.Is(err, repl.ErrDivergence) {
		t.Errorf("explicit snapshot on diverged shard: err = %v, want ErrDivergence", err)
	}
	if _, err := follower.ReplSnapshot(0); !errors.Is(err, repl.ErrDivergence) {
		t.Errorf("bootstrap snapshot of diverged shard: err = %v, want ErrDivergence", err)
	}

	// Graceful shutdown must not flush the fork; recovery restores the
	// verified prefix and replication resumes with the genuine batch.
	follower.Close()
	recovered := open()
	t.Cleanup(recovered.Close)
	seq, err := recovered.Seq(0)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("recovered cursor %d, want the verified prefix 4", seq)
	}
	view, err := recovered.Engine().ViewOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if view.Root() != verified.Root() {
		t.Fatalf("recovered root %s, want verified %s", view.Root(), verified.Root())
	}
	if err := recovered.Apply(0, page.Entries[4]); err != nil {
		t.Fatalf("genuine batch after recovery: %v", err)
	}
	assertSameRoots(t, leader, recovered)
}

// TestReplicatedSeqGap rejects out-of-order batches without corrupting the
// shard.
func TestReplicatedSeqGap(t *testing.T) {
	leader := newReplicating(t, 1, 8)
	follower := newReplicating(t, 1, 8)
	driveLeader(t, leader, 3)
	page, err := leader.ReplPage(0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.Apply(0, page.Entries[1]); !errors.Is(err, repl.ErrSeqGap) {
		t.Fatalf("gap apply: err = %v, want ErrSeqGap", err)
	}
	ship(t, leader, follower) // in-order shipping still works after the gap
	assertSameRoots(t, leader, follower)
}

// TestReplResetBootstrap installs a verified leader snapshot wholesale and
// tails from there; a snapshot whose state does not hash to its advertised
// anchor is refused.
func TestReplResetBootstrap(t *testing.T) {
	leader := newReplicating(t, 2, 8)
	driveLeader(t, leader, 10)

	follower := newReplicating(t, 2, 8)
	for sh := 0; sh < 2; sh++ {
		snap, err := leader.ReplSnapshot(sh)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := follower.Reset(sh, snap)
		if err != nil {
			t.Fatal(err)
		}
		if seq != snap.Seq {
			t.Fatalf("reset cursor %d, want %d", seq, snap.Seq)
		}
	}
	assertSameRoots(t, leader, follower)

	// Continue tailing on top of the bootstrap.
	driveLeader(t, leader, 4)
	ship(t, leader, follower)
	assertSameRoots(t, leader, follower)

	// A lying snapshot (anchor does not match its state) is refused and
	// the shard keeps its current state.
	snap, err := leader.ReplSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	snap.Count++ // lie
	if _, err := follower.Reset(0, snap); !errors.Is(err, repl.ErrDivergence) {
		t.Fatalf("lying snapshot: err = %v, want ErrDivergence", err)
	}
	assertSameRoots(t, leader, follower)
}

// TestReplRetainFloor forces the retained window to slide: a cursor below
// the floor must be told to bootstrap.
func TestReplRetainFloor(t *testing.T) {
	sf, err := New(
		Options{Shards: 1, Views: true, Repl: true, ReplRetain: 4, Restore: restoreTestFeed(8)},
		func(int) (*core.Feed, error) { return newTestFeed(8) },
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sf.Close)
	driveLeader(t, sf, 10)
	page, err := sf.ReplPage(0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !page.SnapshotRequired {
		t.Fatalf("cursor 0 below floor %d should require a snapshot: %+v", page.FloorSeq, page)
	}
	if page.FloorSeq != 6 || page.LeaderSeq != 10 {
		t.Errorf("floor/leader = %d/%d, want 6/10", page.FloorSeq, page.LeaderSeq)
	}
	// From the floor itself, the full window pages out.
	page, err = sf.ReplPage(0, page.FloorSeq, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 2 || page.Entries[0].Seq != 7 {
		t.Errorf("window page = %+v", page)
	}
}

// TestReplLogByteBound: the retained window is bounded by payload bytes as
// well as entry count — a few huge batches must not pin unbounded memory.
func TestReplLogByteBound(t *testing.T) {
	l := newReplLog(100)
	entry := func(seq uint64) repl.Entry {
		return repl.Entry{Seq: seq, Ops: []core.Op{{Type: "write", Key: "k", Value: make([]byte, 60)}}}
	}
	first := entry(1)
	perEntry := first.WireBytes()
	l.maxBytes = 2*perEntry - 1 // room for one entry, never two
	for i := 1; i <= 10; i++ {
		l.append(entry(uint64(i)))
	}
	page := l.page(0, 100)
	if page.LeaderSeq != 10 || !page.SnapshotRequired || page.FloorSeq != 9 {
		t.Fatalf("byte-bounded window = %+v, want floor 9 (1 retained entry)", page)
	}
	if got := l.page(9, 100); len(got.Entries) != 1 || got.Entries[0].Seq != 10 {
		t.Fatalf("retained page = %+v", got)
	}
	if l.bytes != perEntry {
		t.Fatalf("byte accounting drifted: %d, want %d", l.bytes, perEntry)
	}
}

// TestNonReplicatingFeed gates the entry points behind Options.Repl.
func TestNonReplicatingFeed(t *testing.T) {
	sf := newSharded(t, 2, 8, false)
	if _, err := sf.Seq(0); !errors.Is(err, repl.ErrNotReplicating) {
		t.Errorf("Seq on non-replicating feed: %v", err)
	}
	if _, err := sf.ReplPage(0, 0, 1); !errors.Is(err, repl.ErrNotReplicating) {
		t.Errorf("ReplPage on non-replicating feed: %v", err)
	}
	if err := sf.Apply(0, repl.Entry{Seq: 1}); !errors.Is(err, repl.ErrNotReplicating) {
		t.Errorf("Apply on non-replicating feed: %v", err)
	}
}

// TestReplLogBoundaryContiguity sweeps every cursor across the retained
// window: at or above the floor the served page must start exactly one past
// the cursor (no gap, no overlap), strictly below it the log must answer
// with a clean SnapshotRequired signal — never a page that skips entries.
func TestReplLogBoundaryContiguity(t *testing.T) {
	l := newReplLog(4)
	for seq := uint64(1); seq <= 12; seq++ {
		l.append(repl.Entry{Seq: seq})
	}
	floor := l.page(0, 0).FloorSeq
	if floor != 8 {
		t.Fatalf("floor = %d, want 8 (12 appended, 4 retained)", floor)
	}
	for from := uint64(0); from <= 13; from++ {
		page := l.page(from, 0)
		switch {
		case from < floor:
			if !page.SnapshotRequired || len(page.Entries) != 0 {
				t.Fatalf("cursor %d below floor %d: %+v", from, floor, page)
			}
		case from >= 12:
			if page.SnapshotRequired || len(page.Entries) != 0 {
				t.Fatalf("cursor %d at/past head: %+v", from, page)
			}
		default:
			if page.SnapshotRequired || len(page.Entries) == 0 || page.Entries[0].Seq != from+1 {
				t.Fatalf("cursor %d: page does not resume at %d: %+v", from, from+1, page)
			}
			for i, e := range page.Entries {
				if e.Seq != from+1+uint64(i) {
					t.Fatalf("cursor %d: entry %d has seq %d, want %d", from, i, e.Seq, from+1+uint64(i))
				}
			}
		}
	}
}

// TestReplRetainSnapshotPruneBoundary pins the interaction between the
// bounded in-memory replication log and snapshot-triggered log pruning: a
// leader snapshots (pruning its durable log), restarts, and rebuilds its
// repl log from the snapshot seq upward. A follower whose cursor sits
// exactly at the post-restart retention floor must resume with contiguous
// entries; a follower one below the floor must get a clean
// snapshot-bootstrap signal — and that bootstrap must then converge to the
// leader's anchors.
func TestReplRetainSnapshotPruneBoundary(t *testing.T) {
	dir := t.TempDir()
	mkLeader := func() *ShardedFeed {
		opts := persistOptions(dir, 1, 6, false)
		opts.Views = true
		opts.Repl = true
		opts.ReplRetain = 64
		sf, err := New(opts, func(int) (*core.Feed, error) { return newTestFeed(persistEpochOps) })
		if err != nil {
			t.Fatal(err)
		}
		return sf
	}
	leader := mkLeader()
	driveLeader(t, leader, 10) // auto-snapshot at batch 6 prunes log seqs <= 6

	// Two followers tail the pre-restart leader (floor 0, everything in
	// memory): one stops exactly at the upcoming floor, one a batch short.
	atFloor, belowFloor := newReplicating(t, 1, persistEpochOps), newReplicating(t, 1, persistEpochOps)
	catchUpTo := func(f *ShardedFeed, upto uint64) {
		t.Helper()
		page, err := leader.ReplPage(0, 0, int(upto))
		if err != nil {
			t.Fatal(err)
		}
		if page.SnapshotRequired || uint64(len(page.Entries)) < upto {
			t.Fatalf("pre-restart leader cannot serve %d entries: %+v", upto, page)
		}
		for _, e := range page.Entries[:upto] {
			if err := f.Apply(0, e); err != nil {
				t.Fatalf("apply seq %d: %v", e.Seq, err)
			}
		}
	}
	catchUpTo(atFloor, 6)
	catchUpTo(belowFloor, 5)

	// Crash the leader (a clean Close would take a final snapshot and slide
	// the floor to the head): recovery restores the durable snapshot (seq 6,
	// log below it pruned), restarts the repl log there, and re-anchors the
	// replayed tail (7..10) above it.
	leader.Kill()
	leader = mkLeader()
	t.Cleanup(func() { leader.Close() })

	probe, err := leader.ReplPage(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if probe.FloorSeq != 6 || probe.LeaderSeq != 10 || !probe.SnapshotRequired {
		t.Fatalf("post-restart window = %+v, want floor 6, head 10", probe)
	}

	// Cursor exactly at the floor: contiguous resume, no bootstrap.
	page, err := leader.ReplPage(0, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if page.SnapshotRequired {
		t.Fatalf("cursor at floor forced a bootstrap: %+v", page)
	}
	if len(page.Entries) != 4 || page.Entries[0].Seq != 7 {
		t.Fatalf("cursor at floor resumed at %+v, want seqs 7..10", page)
	}
	for _, e := range page.Entries {
		if err := atFloor.Apply(0, e); err != nil {
			t.Fatalf("at-floor follower apply seq %d: %v", e.Seq, err)
		}
	}
	assertSameRoots(t, leader, atFloor)

	// Cursor one below the floor: clean SnapshotRequired (never a page with
	// a seq gap), and the advertised bootstrap path works.
	page, err = leader.ReplPage(0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !page.SnapshotRequired || len(page.Entries) != 0 {
		t.Fatalf("cursor below floor = %+v, want SnapshotRequired", page)
	}
	snap, err := leader.ReplSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	cursor, err := belowFloor.Reset(0, snap)
	if err != nil {
		t.Fatal(err)
	}
	if cursor != 10 {
		t.Fatalf("bootstrap cursor = %d, want leader head 10", cursor)
	}
	ship(t, leader, belowFloor)
	assertSameRoots(t, leader, belowFloor)
}

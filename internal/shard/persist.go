package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"grub/internal/core"
	"grub/internal/gas"
	"grub/internal/kvstore"
	"grub/internal/repl"
)

// Persistence: each shard owns a kvstore.DB under the feed's data
// directory. Applied op batches are appended to a durable log (one typed
// RecordOps value per batch, keyed by sequence number, riding the engine's
// write-ahead log), and snapshots compact the log: a RecordSnapshot value
// carrying the shard's complete feed state (core.FeedSnapshot) plus its
// counter metadata supersedes every log record at or below its sequence.
//
// The discipline is log-then-apply: a batch is durable before it executes,
// so after a crash the recovered state is exactly "a fresh feed replaying
// the logged prefix" — the same equivalence the sharded engine's race tests
// pin down, extended across a process boundary. Recovery loads the newest
// snapshot (if any), restores the feed from it, and replays the log records
// above it in sequence order.

// PersistOptions configures per-shard durability.
type PersistOptions struct {
	// Dir is the feed's data directory; shard i stores under Dir/shard-<i>.
	Dir string
	// SnapshotEvery takes an automatic snapshot after that many applied
	// batches since the last one (0 = only explicit Snapshot calls and the
	// final drain-then-flush on Close).
	SnapshotEvery int
	// SyncWrites fsyncs every log append. Off by default: the crash model
	// of the tests is process death, not host death.
	SyncWrites bool
	// Restore rebuilds one shard's feed from a snapshot (same configuration
	// the build callback uses, plus the snapshot's state). Required when
	// Dir holds state from a previous process; the gateway supplies it from
	// the feed's config.
	Restore func(shard int, snap *core.FeedSnapshot) (*core.Feed, error)
	// Metrics receives the storage engine's telemetry (cache hits, bloom
	// rejections, flush/compaction counts). The gateway shares one bundle
	// across every shard store so the exported grub_kv_* series aggregate
	// the whole process. Nil means unmetered.
	Metrics *kvstore.Metrics
}

// PersistStat reports one shard's durability counters.
type PersistStat struct {
	// Snapshots counts snapshots taken over the store's lifetime.
	Snapshots int `json:"snapshots"`
	// LoggedBatches counts log records retained since the last snapshot
	// (the replay length a crash right now would pay).
	LoggedBatches int `json:"loggedBatches"`
	// LastSeq is the sequence number of the last logged batch.
	LastSeq uint64 `json:"lastSeq"`
	// LastError reports the most recent automatic-snapshot failure, empty
	// when compaction is healthy. The log keeps growing (and stays
	// replayable) while snapshots fail, so this is a health signal, not
	// data loss.
	LastError string `json:"lastError,omitempty"`
}

// PersistStats aggregates durability counters across shards.
type PersistStats struct {
	Snapshots     int    `json:"snapshots"`
	LoggedBatches int    `json:"loggedBatches"`
	LastSeq       uint64 `json:"lastSeq"`
	// LastError is the first shard's reported snapshot failure, if any.
	LastError string `json:"lastError,omitempty"`
}

const (
	logKeyPrefix = "log/"
	snapKey      = "snap"
)

func logKey(seq uint64) []byte {
	return []byte(fmt.Sprintf("%s%016x", logKeyPrefix, seq))
}

// shardMeta is the metadata half of a snapshot record: the worker counters
// that must survive alongside the feed state for stats continuity.
type shardMeta struct {
	Feed      *core.FeedSnapshot `json:"feed"`
	Ops       int                `json:"ops"`
	Batches   int                `json:"batches"`
	BaseGas   gas.Gas            `json:"baseGas"`
	Snapshots int                `json:"snapshots"`
}

// persister owns one shard's durable store. It is touched only by the
// shard's worker goroutine (and by New before the worker starts).
type persister struct {
	db            *kvstore.DB
	snapshotEvery int

	nextSeq       uint64 // sequence the next logged batch gets
	loggedBatches int    // log records since the last snapshot
	snapshots     int
	sinceSnapshot int // applied batches since the last snapshot
}

func openPersister(opts PersistOptions, idx int) (*persister, error) {
	dir := filepath.Join(opts.Dir, fmt.Sprintf("shard-%03d", idx))
	db, err := kvstore.Open(dir, kvstore.Options{SyncWrites: opts.SyncWrites, Metrics: opts.Metrics})
	if err != nil {
		return nil, fmt.Errorf("shard: open store: %w", err)
	}
	return &persister{
		db:            db,
		snapshotEvery: opts.SnapshotEvery,
		nextSeq:       1,
	}, nil
}

// appendBatch logs one op batch before it is applied.
func (p *persister) appendBatch(ops []core.Op) error {
	payload, err := json.Marshal(ops)
	if err != nil {
		return fmt.Errorf("shard: encode batch: %w", err)
	}
	seq := p.nextSeq
	if err := p.db.Put(logKey(seq), kvstore.EncodeRecord(kvstore.RecordOps, seq, payload)); err != nil {
		return fmt.Errorf("shard: log batch %d: %w", seq, err)
	}
	p.nextSeq++
	p.loggedBatches++
	p.sinceSnapshot++
	return nil
}

// snapshot persists the shard's complete state and compacts the log below
// it. st is the worker's live accounting.
func (p *persister) snapshot(st *shardState) error {
	fs, err := st.feed.Snapshot()
	if err != nil {
		return err
	}
	meta := shardMeta{
		Feed:      fs,
		Ops:       st.ops,
		Batches:   st.batches,
		BaseGas:   st.base,
		Snapshots: p.snapshots + 1,
	}
	payload, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("shard: encode snapshot: %w", err)
	}
	lastSeq := p.nextSeq - 1
	if err := p.db.Put([]byte(snapKey), kvstore.EncodeRecord(kvstore.RecordSnapshot, lastSeq, payload)); err != nil {
		return fmt.Errorf("shard: write snapshot: %w", err)
	}
	// Drop the superseded log records, then checkpoint: the memtable
	// flushes to an SSTable, compaction folds the tombstones away and the
	// engine's WAL restarts empty.
	b := kvstore.NewBatch()
	for it := p.db.NewIteratorFrom([]byte(logKeyPrefix)); it.Valid(); it.Next() {
		key := string(it.Key())
		if !strings.HasPrefix(key, logKeyPrefix) {
			break // past the log keyspace (keys iterate sorted)
		}
		_, seq, _, err := kvstore.DecodeTypedRecord(it.Value())
		if err != nil {
			return fmt.Errorf("shard: corrupt log record %q: %w", key, err)
		}
		if seq <= lastSeq {
			b.Delete([]byte(key))
		}
	}
	if err := p.db.Write(b); err != nil {
		return fmt.Errorf("shard: prune log: %w", err)
	}
	if err := p.db.Checkpoint(); err != nil {
		return fmt.Errorf("shard: checkpoint: %w", err)
	}
	p.snapshots++
	p.loggedBatches = 0
	p.sinceSnapshot = 0
	return nil
}

// maybeSnapshot takes an automatic snapshot when the configured cadence is
// due.
func (p *persister) maybeSnapshot(st *shardState) error {
	if p.snapshotEvery <= 0 || p.sinceSnapshot < p.snapshotEvery {
		return nil
	}
	return p.snapshot(st)
}

// rollbackBatch removes the most recently logged batch — one the replication
// anchor check refused — so it cannot replay into recovered state. seq must
// be the last appended sequence.
func (p *persister) rollbackBatch(seq uint64) error {
	if seq != p.nextSeq-1 {
		return fmt.Errorf("shard: rollback seq %d is not the last logged %d", seq, p.nextSeq-1)
	}
	if err := p.db.Delete(logKey(seq)); err != nil {
		return fmt.Errorf("shard: rollback batch %d: %w", seq, err)
	}
	p.nextSeq = seq
	p.loggedBatches--
	p.sinceSnapshot--
	return nil
}

// resetTo reinstalls the store around a replication bootstrap: every local
// log record is dropped (the local history — possibly stale or diverged —
// is superseded wholesale by the leader snapshot) and the freshly installed
// state is snapshotted at seq as the new durable base.
func (p *persister) resetTo(st *shardState, seq uint64) error {
	b := kvstore.NewBatch()
	for it := p.db.NewIteratorFrom([]byte(logKeyPrefix)); it.Valid(); it.Next() {
		if !strings.HasPrefix(string(it.Key()), logKeyPrefix) {
			break
		}
		b.Delete(it.Key())
	}
	if err := p.db.Write(b); err != nil {
		return fmt.Errorf("shard: drop superseded log: %w", err)
	}
	p.nextSeq = seq + 1
	p.loggedBatches = 0
	p.sinceSnapshot = 0
	return p.snapshot(st)
}

func (p *persister) stat() PersistStat {
	return PersistStat{Snapshots: p.snapshots, LoggedBatches: p.loggedBatches, LastSeq: p.nextSeq - 1}
}

// recover loads the shard's durable state: the newest snapshot (if any)
// restores the feed, and every log record above it replays through the
// normal execution path. It returns the recovered shard state, with ops,
// batches and base gas continuing from where the previous process stopped.
func recoverShard(p *persister, idx int, opts Options, build func(int) (*core.Feed, error)) (*shardState, error) {
	var (
		feed    *core.Feed
		st      shardState
		lastSeq uint64
	)
	if raw, err := p.db.Get([]byte(snapKey)); err == nil {
		kind, seq, payload, derr := kvstore.DecodeTypedRecord(raw)
		if derr != nil {
			return nil, fmt.Errorf("shard: corrupt snapshot record: %w", derr)
		}
		if kind != kvstore.RecordSnapshot {
			return nil, fmt.Errorf("shard: snapshot key holds kind %d", kind)
		}
		var meta shardMeta
		if err := json.Unmarshal(payload, &meta); err != nil {
			return nil, fmt.Errorf("shard: decode snapshot: %w", err)
		}
		if opts.Persist.Restore == nil {
			return nil, fmt.Errorf("shard: store has a snapshot but no Restore callback is configured")
		}
		feed, err = opts.Persist.Restore(idx, meta.Feed)
		if err != nil {
			return nil, fmt.Errorf("shard: restore feed: %w", err)
		}
		st = shardState{ops: meta.Ops, batches: meta.Batches, base: meta.BaseGas}
		p.snapshots = meta.Snapshots
		lastSeq = seq
	} else if err != kvstore.ErrNotFound {
		return nil, fmt.Errorf("shard: read snapshot: %w", err)
	} else {
		feed, err = build(idx)
		if err != nil {
			return nil, err
		}
		st = shardState{base: feed.FeedGas()}
	}
	st.feed = feed
	if opts.Repl {
		// The replication log restarts at the snapshot's sequence; every
		// replayed batch below re-anchors into it, so a follower that was
		// tailing this shard before the crash resumes without a snapshot
		// bootstrap as long as its cursor is above the durable snapshot.
		st.repl = newReplLog(opts.ReplRetain)
		st.repl.reset(lastSeq)
	}

	// Replay the log above the snapshot, in sequence order: the cursor-
	// positioned iterator starts at the first retained record past the
	// snapshot (the fixed-width hex key preserves numeric order).
	maxSeq := lastSeq
	for it := p.db.NewIteratorFrom(logKey(lastSeq + 1)); it.Valid(); it.Next() {
		key := string(it.Key())
		if !strings.HasPrefix(key, logKeyPrefix) {
			break // past the log keyspace
		}
		kind, seq, payload, err := kvstore.DecodeTypedRecord(it.Value())
		if err != nil {
			return nil, fmt.Errorf("shard: corrupt log record %q: %w", key, err)
		}
		if kind != kvstore.RecordOps || seq <= lastSeq {
			continue
		}
		var ops []core.Op
		if err := json.Unmarshal(payload, &ops); err != nil {
			return nil, fmt.Errorf("shard: decode log record %q: %w", key, err)
		}
		results := core.ApplyOps(feed, ops)
		st.ops += len(ops)
		st.batches++
		p.loggedBatches++
		if opts.RecordTrace {
			st.trace = append(st.trace, ops...)
			st.traceRes = append(st.traceRes, results...)
		}
		if st.repl != nil {
			set := feed.DO.Set()
			st.repl.append(repl.Entry{
				Seq: seq, Ops: ops,
				Root: set.Root(), Count: set.Len(), Height: feed.Chain.Height(),
			})
		}
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	p.nextSeq = maxSeq + 1
	st.persist = p
	return &st, nil
}

// RemoveStore deletes a feed's on-disk persistence directory. The gateway
// calls it when a persisted feed is explicitly closed (the feed is gone
// from the manifest; its state must not resurrect).
func RemoveStore(dir string) error {
	if dir == "" {
		return nil
	}
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("shard: remove store: %w", err)
	}
	return nil
}

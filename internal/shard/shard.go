// Package shard implements the sharded feed engine: a ShardedFeed
// hash-partitions the keyspace across N independent core.Feed shards, each
// with its own simulated chain, gas meter and replication policy, and each
// owned by a dedicated worker goroutine fed through a mailbox channel (the
// single-writer pattern the gateway introduced, pushed down one layer).
//
// GRuB's replication decisions (memoryless/memorizing/adaptive-K) are made
// per key, so the keyspace partitions cleanly: no protocol state crosses a
// shard boundary. An incoming batch is split per shard by key hash, the
// sub-batches execute concurrently (scatter), and the per-op results are
// merged back into the caller's original order (gather). A one-shard
// ShardedFeed degenerates to exactly the single worker/mailbox feed of the
// unsharded gateway.
//
// Semantics under sharding:
//
//   - Per-key operations (read/write) behave exactly as on a single feed:
//     every key lives on exactly one shard, which serializes its ops.
//   - Scans route by their start key and expand within that shard's
//     keyspace only (the hash partition destroys global key order).
//   - A batch is atomic per shard, not across shards: each shard serializes
//     its sub-batches, but sub-batches of two concurrent batches may
//     interleave differently on different shards. Per-key results are
//     unaffected — that is the equivalence the tests pin down.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"grub/internal/core"
	"grub/internal/gas"
	"grub/internal/merkle"
	"grub/internal/obs"
	"grub/internal/query"
	"grub/internal/repl"
)

// ErrClosed is returned by operations on a closed ShardedFeed.
var ErrClosed = errors.New("shard: feed closed")

// ShardOf maps a key to its shard index in [0, n). The routing is pure
// (FNV-1a over the key bytes, canonically implemented in internal/query so
// verifying light clients share it), so clients, the engine and replays all
// agree on the partition without coordination.
func ShardOf(key string, n int) int { return query.ShardOf(key, n) }

// Options configures a ShardedFeed.
type Options struct {
	// Shards is the number of partitions; values < 1 mean 1.
	Shards int
	// RecordTrace keeps each shard's serialized op order (and per-op
	// results) in memory so equivalence tests can replay it. Off by
	// default: the trace grows without bound. With persistence enabled,
	// a recovered feed's trace restarts at the newest snapshot (earlier
	// ops were compacted away).
	RecordTrace bool
	// Views publishes an immutable read view (frozen record set + ads
	// root + chain height) per shard after every applied batch, served by
	// Engine() — the authenticated read path (internal/query). Reads on
	// that path never touch the shard workers. Publication is an O(1)
	// root-pointer capture of the persistent record set.
	Views bool
	// Persist, when non-nil, backs every shard with a durable op log and
	// snapshot store (see persist.go); New recovers whatever state the
	// directory already holds.
	Persist *PersistOptions
	// Repl keeps a bounded in-memory replication log per shard (every
	// applied batch with its post-apply anchor) and enables the
	// Apply/Reset/ReplSnapshot replication entry points (see repl.go).
	// Costs one root computation per batch — shared with the view clone
	// when Views is also set, as on every gateway feed.
	Repl bool
	// ReplRetain caps the replication log length per shard (entries); 0
	// means DefaultReplRetain. Followers further behind bootstrap from a
	// snapshot.
	ReplRetain int
	// Restore rebuilds one shard's feed from a snapshot for the
	// replication bootstrap path (Reset); it must wire the feed exactly as
	// the build callback would, then install the snapshot state. Falls
	// back to Persist.Restore when nil.
	Restore func(shard int, snap *core.FeedSnapshot) (*core.Feed, error)
	// Stages, when non-nil, receives per-stage batch latency
	// observations (mailbox wait, WAL persist, apply, repl append, view
	// publish) for every shard of this feed. The histograms are shared
	// across shards — series are labeled by feed, with the shard index
	// carried only on trace spans. Nil disables stage timing entirely.
	Stages *obs.FeedStages
	// Load, when non-nil, receives per-batch ops and gas counts from
	// every shard worker (client batches and replicated applies alike)
	// — the feed's share of the node's load accounting. Nil disables.
	Load *obs.RateMeter
}

// ErrNotPersistent is returned by Snapshot on a feed without persistence.
var ErrNotPersistent = errors.New("shard: feed has no persistence")

// ShardStat is one shard's share of a sharded feed's accounting.
type ShardStat struct {
	Shard int `json:"shard"`
	// Ops and Batches count the sub-batches this shard executed.
	Ops     int            `json:"ops"`
	Batches int            `json:"batches"`
	Feed    core.FeedStats `json:"feed"`
	// BaseGas is the shard's genesis digest cost, excluded from GasPerOp.
	BaseGas  gas.Gas `json:"baseGas"`
	GasPerOp float64 `json:"gasPerOp"`
	// Persist reports the shard's durability counters (nil without
	// persistence).
	Persist *PersistStat `json:"persist,omitempty"`
	// Diverged reports a halted replication anchor check (follower role):
	// the shard refused a batch whose post-apply state disagreed with the
	// leader's anchor and stopped replicating. Empty when healthy.
	Diverged string `json:"diverged,omitempty"`
}

// Stats aggregates a sharded feed: summed gas counters and read accounting
// across shards, plus the per-shard breakdown.
type Stats struct {
	Shards int `json:"shards"`
	// Ops sums per-shard ops; Batches counts top-level Do calls.
	Ops     int `json:"ops"`
	Batches int `json:"batches"`
	// Feed is the field-wise sum of the per-shard snapshots (Height and
	// TxCount sum across the independent per-shard chains).
	Feed     core.FeedStats `json:"feed"`
	BaseGas  gas.Gas        `json:"baseGas"`
	GasPerOp float64        `json:"gasPerOp"`
	PerShard []ShardStat    `json:"perShard"`
	// Persist sums the per-shard durability counters (nil without
	// persistence).
	Persist *PersistStats `json:"persist,omitempty"`
}

// addFeedStats sums two snapshots field-wise. Summing Height/TxCount is
// meaningful because shards run on independent chains: the aggregate equals
// the sum over N single feeds replaying the per-shard sub-traces.
func addFeedStats(a, b core.FeedStats) core.FeedStats {
	a.Delivered += b.Delivered
	a.NotFound += b.NotFound
	a.FeedGas += b.FeedGas
	a.TotalGas += b.TotalGas
	a.Height += b.Height
	a.TxCount += b.TxCount
	a.Records += b.Records
	a.Replicated += b.Replicated
	return a
}

// request kinds understood by a shard worker.
type reqKind int

const (
	reqOps reqKind = iota
	reqStats
	reqTrace
	reqSnapshot
	reqRepl      // replicated apply: log-then-apply + anchor check
	reqReplSnap  // consistent bootstrap snapshot at the current seq
	reqReplReset // install a bootstrap snapshot wholesale
	reqStop      // graceful: final snapshot (if persistent), close store
	reqKill      // crash simulation: abandon the store as-is
)

type request struct {
	kind  reqKind
	ops   []core.Op
	entry *repl.Entry    // reqRepl
	snap  *repl.Snapshot // reqReplReset
	resp  chan response
	// tr carries the batch's trace (nil for untraced requests); enq is
	// the mailbox-enqueue instant, stamped only when the feed times
	// stages or the batch is traced, and yields the mailbox-wait span.
	tr  *obs.Trace
	enq time.Time
}

type response struct {
	results  []core.OpResult
	stat     ShardStat
	trace    []core.Op
	traceRes []core.OpResult
	snap     *repl.Snapshot
	err      error
}

// shardState is everything one shard worker owns: the feed, its gas/op
// accounting, the optional in-memory trace and the optional durable store.
// New assembles it (running recovery when the store holds prior state);
// after the worker starts, only the worker goroutine touches it.
type shardState struct {
	feed *core.Feed
	// base is the genesis digest cost, excluded from gas/op. It survives
	// restarts via the snapshot metadata.
	base gas.Gas
	// ops and batches count executed work across the shard's whole
	// lifetime, including batches replayed during recovery.
	ops      int
	batches  int
	trace    []core.Op
	traceRes []core.OpResult
	persist  *persister // nil without persistence
	// repl is the shard's in-memory replication log (nil without
	// Options.Repl); diverged, once set, permanently refuses further
	// replicated applies on this shard (follower role, anchor mismatch).
	repl     *replLog
	diverged error
	// persistErr holds the last automatic-snapshot failure. Auto-snapshot
	// failures do not fail the batch that triggered them (the batch is
	// applied and logged; only compaction is behind) — they surface as
	// PersistStat.LastError in Stats and as the error of the next explicit
	// Snapshot call.
	persistErr error
	// stages receives per-stage latency observations (nil disables).
	stages *obs.FeedStages
	// load receives per-batch ops/gas counts (nil disables).
	load *obs.RateMeter
}

// meterBatch records an applied batch's work on the feed's load meter:
// the op count and the gas the batch charged (post-apply minus
// pre-apply feed gas).
func (st *shardState) meterBatch(ops int, gasBefore gas.Gas) {
	if st.load == nil {
		return
	}
	st.load.Add(ops, float64(st.feed.FeedGas()-gasBefore), 0, 0)
}

// stageClock stamps successive pipeline stages of one batch onto the
// shard's stage histograms and, when the batch is traced, its span
// record. The zero value is inert; newStageClock arms it only when
// there is somewhere to record to, so untimed feeds skip the clock
// reads entirely.
type stageClock struct {
	stages *obs.FeedStages
	tr     *obs.Trace
	shard  int
	start  time.Time
	last   time.Time
	on     bool
}

// newStageClock starts timing one batch on a shard worker. When the
// request carries its enqueue instant, the elapsed mailbox wait is
// recorded immediately.
func newStageClock(st *shardState, req request, shard int) stageClock {
	c := stageClock{stages: st.stages, tr: req.tr, shard: shard}
	c.on = c.stages != nil || c.tr != nil
	if !c.on {
		return c
	}
	c.start = time.Now()
	c.last = c.start
	if !req.enq.IsZero() {
		d := c.start.Sub(req.enq)
		c.stages.GetMailbox().Observe(d.Seconds())
		c.tr.AddSpan(obs.StageMailbox, shard, req.enq, d)
	}
	return c
}

// mark closes the current stage: the time since the previous mark (or
// the clock's start) is recorded under stage on h and as a span.
func (c *stageClock) mark(stage string, h *obs.Histogram) {
	if !c.on {
		return
	}
	now := time.Now()
	d := now.Sub(c.last)
	h.Observe(d.Seconds())
	c.tr.AddSpan(stage, c.shard, c.last, d)
	c.last = now
}

// skip advances the clock without recording, so work with no dedicated
// stage (e.g. auto-snapshot compaction) does not pollute the next one.
func (c *stageClock) skip() {
	if c.on {
		c.last = time.Now()
	}
}

// total records the time since the clock started under stage.
func (c *stageClock) total(stage string, h *obs.Histogram) {
	if !c.on {
		return
	}
	d := time.Since(c.start)
	h.Observe(d.Seconds())
	c.tr.AddSpan(stage, c.shard, c.start, d)
}

// worker owns one shard's feed. Only its goroutine touches the feed;
// everyone else talks through the mailbox.
type worker struct {
	idx  int
	mail chan request
	done chan struct{}
	// views, when non-nil, receives this shard's read view after every
	// applied batch (Options.Views).
	views *query.Engine
	// restore rebuilds the shard's feed from a snapshot (replication
	// bootstrap); nil disables Reset.
	restore func(shard int, snap *core.FeedSnapshot) (*core.Feed, error)
}

// publishView snapshots the shard's current state into an immutable read
// view and installs it: the current version of the DO's authenticated
// mirror, its root, the shard chain's height, and the batch count as the
// monotone publication sequence. The set is a persistent tree, so Clone is
// an O(1) root-pointer capture — publication cost is independent of the
// record count, and any number of live views share structure.
func (w *worker) publishView(st *shardState) {
	if w.views == nil {
		return
	}
	frozen := st.feed.DO.Set().Clone()
	w.views.Publish(w.idx, query.NewView(w.idx, uint64(st.batches), st.feed.Chain.Height(), frozen))
}

// anchor reads the shard's current post-apply anchor. Root is maintained
// incrementally on the live set, so this is an O(1) read.
func (st *shardState) anchor() (root merkle.Hash, count int, height uint64) {
	set := st.feed.DO.Set()
	return set.Root(), set.Len(), st.feed.Chain.Height()
}

// commitBatch records an applied batch in the replication log (when
// replicating) and publishes the shard's new read view. ops is the batch as
// executed; seq is the shard's post-apply batch count.
func (w *worker) commitBatch(st *shardState, ops []core.Op, clk *stageClock) {
	if st.repl != nil {
		root, count, height := st.anchor()
		st.repl.append(repl.Entry{Seq: uint64(st.batches), Ops: ops, Root: root, Count: count, Height: height})
		clk.mark(obs.StageReplAppend, clk.stages.GetReplAppend())
	}
	w.publishView(st)
	clk.mark(obs.StagePublish, clk.stages.GetPublish())
}

// mailboxDepth buffers sub-batch sends so a scatter never stalls on one busy
// shard while the others sit idle.
const mailboxDepth = 64

func (w *worker) loop(st *shardState, record bool) {
	defer close(w.done)
	for req := range w.mail {
		switch req.kind {
		case reqStop:
			err := st.persistErr
			if st.persist != nil {
				// Drain-then-flush: a final snapshot makes the next
				// open replay-free; the WAL already holds everything,
				// so a failure here costs recovery time, not data. A
				// diverged shard must NOT snapshot: its in-memory state
				// holds the refused fork, while its durable log was
				// rolled back to the verified prefix — recovery from
				// the log is exactly the state we want back.
				if st.diverged == nil {
					if serr := st.persist.snapshot(st); err == nil {
						err = serr
					}
				}
				if cerr := st.persist.db.Close(); err == nil {
					err = cerr
				}
			}
			req.resp <- response{err: err}
			return
		case reqKill:
			if st.persist != nil {
				// Simulated crash: no snapshot, no flush. Close only
				// releases file handles; recovery must come from the
				// engine's WAL exactly as after a process death.
				st.persist.db.Close()
			}
			req.resp <- response{}
			return
		case reqStats:
			stat := ShardStat{Shard: w.idx, Ops: st.ops, Batches: st.batches, Feed: st.feed.Stats(), BaseGas: st.base}
			if st.ops > 0 {
				stat.GasPerOp = float64(stat.Feed.FeedGas-st.base) / float64(st.ops)
			}
			if st.persist != nil {
				ps := st.persist.stat()
				if st.persistErr != nil {
					ps.LastError = st.persistErr.Error()
				}
				stat.Persist = &ps
			}
			if st.diverged != nil {
				stat.Diverged = st.diverged.Error()
			}
			req.resp <- response{stat: stat}
		case reqRepl:
			clk := newStageClock(st, req, w.idx)
			req.resp <- response{err: w.applyReplicated(st, req.entry, record, &clk)}
		case reqReplSnap:
			snap, err := w.replSnapshot(st)
			req.resp <- response{snap: snap, err: err}
		case reqReplReset:
			req.resp <- response{err: w.resetReplicated(st, req.snap)}
		case reqSnapshot:
			if st.persist == nil {
				req.resp <- response{err: ErrNotPersistent}
				continue
			}
			if st.diverged != nil {
				// Snapshotting would durably adopt the refused fork.
				req.resp <- response{err: st.diverged}
				continue
			}
			err := st.persistErr
			st.persistErr = nil
			if serr := st.persist.snapshot(st); err == nil {
				err = serr
			}
			var stat ShardStat
			if err == nil {
				ps := st.persist.stat()
				stat = ShardStat{Shard: w.idx, Persist: &ps}
			}
			req.resp <- response{stat: stat, err: err}
		case reqTrace:
			tr := make([]core.Op, len(st.trace))
			copy(tr, st.trace)
			rs := make([]core.OpResult, len(st.traceRes))
			copy(rs, st.traceRes)
			req.resp <- response{trace: tr, traceRes: rs}
		default:
			if st.diverged != nil {
				// The shard is halted on a refused fork: accepting new
				// writes (or letting an auto-snapshot run) would build
				// on — and eventually persist — unverified state.
				req.resp <- response{err: st.diverged}
				continue
			}
			clk := newStageClock(st, req, w.idx)
			if st.persist != nil {
				// Log-then-apply: the batch is durable before it
				// executes, so recovery replays exactly the logged
				// prefix.
				if err := st.persist.appendBatch(req.ops); err != nil {
					req.resp <- response{err: err}
					continue
				}
				clk.mark(obs.StagePersist, clk.stages.GetPersist())
			}
			gasBefore := st.feed.FeedGas()
			results := core.ApplyOps(st.feed, req.ops)
			clk.mark(obs.StageApply, clk.stages.GetApply())
			st.meterBatch(len(req.ops), gasBefore)
			st.ops += len(req.ops)
			st.batches++
			if record {
				st.trace = append(st.trace, req.ops...)
				st.traceRes = append(st.traceRes, results...)
			}
			if st.persist != nil {
				if serr := st.persist.maybeSnapshot(st); serr != nil {
					st.persistErr = serr
				}
				clk.skip() // compaction has no stage of its own
			}
			// Publish before acking so a client that saw its batch
			// complete reads its own writes from the next view.
			w.commitBatch(st, req.ops, &clk)
			req.resp <- response{results: results}
		}
	}
}

// applyReplicated replays one shipped batch through the same log-then-apply
// path client batches take, then verifies the post-apply state against the
// leader's anchor. On a mismatch the batch is rolled back out of the durable
// log (it must not replay into recovered state), the shard halts replication
// permanently, and the previously published view keeps serving — the shard
// refuses to fork rather than serving unverified state. (A crash between
// the log append and the rollback can leave the refused batch durable; the
// next replicated apply after recovery re-detects the divergence.)
func (w *worker) applyReplicated(st *shardState, e *repl.Entry, record bool, clk *stageClock) error {
	if st.repl == nil {
		return ErrNotReplicating
	}
	if st.diverged != nil {
		return st.diverged
	}
	if want := uint64(st.batches) + 1; e.Seq != want {
		return fmt.Errorf("%w: shard %d expects seq %d, got %d", repl.ErrSeqGap, w.idx, want, e.Seq)
	}
	if st.persist != nil {
		if err := st.persist.appendBatch(e.Ops); err != nil {
			return err
		}
		clk.mark(obs.StagePersist, clk.stages.GetPersist())
	}
	gasBefore := st.feed.FeedGas()
	results := core.ApplyOps(st.feed, e.Ops)
	clk.mark(obs.StageApply, clk.stages.GetApply())
	st.meterBatch(len(e.Ops), gasBefore)
	st.ops += len(e.Ops)
	st.batches++
	if record {
		st.trace = append(st.trace, e.Ops...)
		st.traceRes = append(st.traceRes, results...)
	}
	root, count, _ := st.anchor()
	if root != e.Root || count != e.Count {
		div := &repl.DivergenceError{
			Shard: w.idx, Seq: e.Seq,
			WantRoot: e.Root, GotRoot: root,
			WantCount: e.Count, GotCount: count,
		}
		st.diverged = div
		if st.persist != nil {
			if rerr := st.persist.rollbackBatch(e.Seq); rerr != nil {
				st.persistErr = rerr
			}
		}
		return div
	}
	st.repl.append(*e)
	clk.mark(obs.StageReplAppend, clk.stages.GetReplAppend())
	if st.persist != nil {
		if serr := st.persist.maybeSnapshot(st); serr != nil {
			st.persistErr = serr
		}
		clk.skip()
	}
	w.publishView(st)
	clk.mark(obs.StagePublish, clk.stages.GetPublish())
	clk.total(obs.StageFollowerApply, clk.stages.GetFollowerApply())
	return nil
}

// replSnapshot captures a consistent bootstrap snapshot of the shard at its
// current sequence. A diverged shard refuses: exporting its in-memory state
// would hand the refused fork to chained followers.
func (w *worker) replSnapshot(st *shardState) (*repl.Snapshot, error) {
	if st.repl == nil {
		return nil, ErrNotReplicating
	}
	if st.diverged != nil {
		return nil, st.diverged
	}
	fs, err := st.feed.Snapshot()
	if err != nil {
		return nil, err
	}
	root, count, height := st.anchor()
	return &repl.Snapshot{
		Shard: w.idx, Seq: uint64(st.batches),
		Root: root, Count: count, Height: height,
		Feed: fs, Ops: st.ops, BaseGas: st.base,
	}, nil
}

// resetReplicated installs a bootstrap snapshot wholesale: the restored feed
// must hash to the snapshot's advertised anchor before it replaces the
// shard's state (verified catch-up — a corrupt or lying snapshot is refused
// and the current state stays). On success the shard's counters, replication
// log and durable store all restart from the snapshot's sequence.
func (w *worker) resetReplicated(st *shardState, snap *repl.Snapshot) error {
	if st.repl == nil {
		return ErrNotReplicating
	}
	if w.restore == nil {
		return fmt.Errorf("shard: shard %d has no Restore callback for replication bootstrap", w.idx)
	}
	feed, err := w.restore(w.idx, snap.Feed)
	if err != nil {
		return fmt.Errorf("shard: restore bootstrap snapshot: %w", err)
	}
	set := feed.DO.Set()
	if root, count := set.Root(), set.Len(); root != snap.Root || count != snap.Count {
		return &repl.DivergenceError{
			Shard: w.idx, Seq: snap.Seq,
			WantRoot: snap.Root, GotRoot: root,
			WantCount: snap.Count, GotCount: count,
		}
	}
	st.feed = feed
	st.ops = snap.Ops
	st.batches = int(snap.Seq)
	st.base = snap.BaseGas
	st.trace, st.traceRes = nil, nil // earlier history was superseded wholesale
	st.diverged = nil
	st.repl.reset(snap.Seq)
	if st.persist != nil {
		if err := st.persist.resetTo(st, snap.Seq); err != nil {
			st.persistErr = err
		}
	}
	w.publishView(st)
	return nil
}

// ShardedFeed partitions one logical feed across N shard workers. All
// methods are safe for concurrent use; per-shard ordering is serialized by
// the shard workers.
type ShardedFeed struct {
	workers   []*worker
	batches   atomic.Int64
	closeOnce sync.Once
	// engine serves the authenticated read path (nil unless
	// Options.Views).
	engine *query.Engine
	// replLogs holds each shard's replication log (entries nil unless
	// Options.Repl), index-aligned with workers. The logs stay readable
	// after Close, like the engine views.
	replLogs []*replLog
	// stages mirrors Options.Stages (nil disables stage timing).
	stages *obs.FeedStages
}

// Engine returns the feed's snapshot-isolated query engine, or nil when the
// feed was built without Options.Views. The engine stays readable after
// Close (views are immutable), serving whatever each shard last published.
func (s *ShardedFeed) Engine() *query.Engine { return s.engine }

// New builds a sharded feed with opts.Shards shards, constructing each
// shard's feed with build (called with the shard index; each call must
// return a fresh feed on its own chain). With Persist set, each shard first
// recovers whatever its store directory holds — newest snapshot, then log
// replay — before accepting traffic, so New after a crash resumes exactly
// where the durable log stops.
func New(opts Options, build func(shard int) (*core.Feed, error)) (*ShardedFeed, error) {
	n := opts.Shards
	if n < 1 {
		n = 1
	}
	s := &ShardedFeed{workers: make([]*worker, n), replLogs: make([]*replLog, n), stages: opts.Stages}
	if opts.Views {
		s.engine = query.NewEngine(n)
		s.engine.SetProofHistogram(opts.Stages.GetProofBuild())
	}
	restore := opts.Restore
	if restore == nil && opts.Persist != nil {
		restore = opts.Persist.Restore
	}
	for i := 0; i < n; i++ {
		st, err := newShardState(opts, i, build)
		if err != nil {
			for j := 0; j < i; j++ {
				s.stopWorker(s.workers[j])
			}
			return nil, err
		}
		s.replLogs[i] = st.repl
		w := &worker{idx: i, mail: make(chan request, mailboxDepth), done: make(chan struct{}), views: s.engine, restore: restore}
		s.workers[i] = w
		// Initial view: reads (including absence proofs over the empty
		// set, and recovered state after a restart) work before the
		// first batch lands.
		w.publishView(st)
		go w.loop(st, opts.RecordTrace)
	}
	return s, nil
}

// newShardState prepares one shard before its worker starts: fresh build in
// the in-memory case, open-store-and-recover in the persistent case. With
// replication enabled the shard's replication log starts at the recovered
// sequence (recovery re-anchors every replayed batch into it).
func newShardState(opts Options, idx int, build func(int) (*core.Feed, error)) (*shardState, error) {
	if opts.Persist == nil {
		f, err := build(idx)
		if err != nil {
			return nil, err
		}
		st := &shardState{feed: f, base: f.FeedGas(), stages: opts.Stages, load: opts.Load}
		if opts.Repl {
			st.repl = newReplLog(opts.ReplRetain)
		}
		return st, nil
	}
	p, err := openPersister(*opts.Persist, idx)
	if err != nil {
		return nil, err
	}
	st, err := recoverShard(p, idx, opts, build)
	if err != nil {
		p.db.Close()
		return nil, err
	}
	st.stages = opts.Stages
	st.load = opts.Load
	return st, nil
}

// Shards returns the partition count.
func (s *ShardedFeed) Shards() int { return len(s.workers) }

// send routes one request to a shard worker, without waiting for the
// response (gather happens at the caller so scatters overlap).
func (s *ShardedFeed) send(w *worker, req request) error {
	select {
	case w.mail <- req:
		return nil
	case <-w.done:
		return ErrClosed
	}
}

// recv waits for one response from a previously sent request.
func (s *ShardedFeed) recv(w *worker, resp chan response) (response, error) {
	select {
	case r := <-resp:
		return r, nil
	case <-w.done:
		return response{}, ErrClosed
	}
}

// Do executes one batch: it splits the ops per shard by key hash, runs the
// sub-batches concurrently, and merges the results back into the input
// order. The error is non-nil only when the feed is closed.
func (s *ShardedFeed) Do(ops []core.Op) ([]core.OpResult, error) {
	return s.DoCtx(context.Background(), ops)
}

// DoCtx is Do with a context carrying observability state: when the
// context holds an obs.Trace (see obs.WithTrace), every pipeline stage
// the batch crosses is recorded as a span on it, and when the feed was
// built with Options.Stages the mailbox wait is timed per sub-batch.
// The context does not cancel the batch — shard workers never abandon
// a batch mid-apply.
func (s *ShardedFeed) DoCtx(ctx context.Context, ops []core.Op) ([]core.OpResult, error) {
	tr := obs.TraceFrom(ctx)
	var enq time.Time
	if s.stages != nil || tr != nil {
		enq = time.Now()
	}
	n := len(s.workers)
	s.batches.Add(1)
	if n == 1 {
		w := s.workers[0]
		resp := make(chan response, 1)
		if err := s.send(w, request{kind: reqOps, ops: ops, resp: resp, tr: tr, enq: enq}); err != nil {
			return nil, err
		}
		r, err := s.recv(w, resp)
		if err != nil {
			return nil, err
		}
		return r.results, r.err
	}

	// Scatter: split per shard, preserving each key's relative order.
	subOps := make([][]core.Op, n)
	subPos := make([][]int, n)
	for i, op := range ops {
		sh := ShardOf(op.Key, n)
		subOps[sh] = append(subOps[sh], op)
		subPos[sh] = append(subPos[sh], i)
	}
	resps := make([]chan response, n)
	for sh := 0; sh < n; sh++ {
		if len(subOps[sh]) == 0 {
			continue
		}
		resps[sh] = make(chan response, 1)
		if err := s.send(s.workers[sh], request{kind: reqOps, ops: subOps[sh], resp: resps[sh], tr: tr, enq: enq}); err != nil {
			return nil, err
		}
	}

	// Gather: merge per-shard results back into the caller's order.
	out := make([]core.OpResult, len(ops))
	for sh := 0; sh < n; sh++ {
		if resps[sh] == nil {
			continue
		}
		r, err := s.recv(s.workers[sh], resps[sh])
		if err != nil {
			return nil, err
		}
		if r.err != nil {
			return nil, r.err
		}
		for j, pos := range subPos[sh] {
			out[pos] = r.results[j]
		}
	}
	return out, nil
}

// broadcast sends one request kind to every shard and gathers the responses
// in shard order.
func (s *ShardedFeed) broadcast(kind reqKind) ([]response, error) {
	resps := make([]chan response, len(s.workers))
	for i, w := range s.workers {
		resps[i] = make(chan response, 1)
		if err := s.send(w, request{kind: kind, resp: resps[i]}); err != nil {
			return nil, err
		}
	}
	out := make([]response, len(s.workers))
	for i, w := range s.workers {
		r, err := s.recv(w, resps[i])
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// Stats snapshots every shard and aggregates. With batches in flight the
// per-shard snapshots are each internally consistent but may straddle a
// batch; quiesce first for exact accounting (the tests do).
func (s *ShardedFeed) Stats() (Stats, error) {
	rs, err := s.broadcast(reqStats)
	if err != nil {
		return Stats{}, err
	}
	st := Stats{
		Shards:   len(s.workers),
		Batches:  int(s.batches.Load()),
		PerShard: make([]ShardStat, len(rs)),
	}
	for i, r := range rs {
		st.PerShard[i] = r.stat
		st.Ops += r.stat.Ops
		st.BaseGas += r.stat.BaseGas
		st.Feed = addFeedStats(st.Feed, r.stat.Feed)
		if p := r.stat.Persist; p != nil {
			if st.Persist == nil {
				st.Persist = &PersistStats{}
			}
			st.Persist.Snapshots += p.Snapshots
			st.Persist.LoggedBatches += p.LoggedBatches
			if p.LastSeq > st.Persist.LastSeq {
				st.Persist.LastSeq = p.LastSeq
			}
			if st.Persist.LastError == "" {
				st.Persist.LastError = p.LastError
			}
		}
	}
	if st.Ops > 0 {
		st.GasPerOp = float64(st.Feed.FeedGas-st.BaseGas) / float64(st.Ops)
	}
	return st, nil
}

// Snapshot forces an immediate snapshot on every shard: feed state is
// serialized into the store, the op log below it is pruned and the engine
// checkpoints, so a subsequent open replays nothing. It returns the
// aggregated durability counters, or ErrNotPersistent for an in-memory
// feed.
func (s *ShardedFeed) Snapshot() (PersistStats, error) {
	rs, err := s.broadcast(reqSnapshot)
	if err != nil {
		return PersistStats{}, err
	}
	var out PersistStats
	for _, r := range rs {
		if r.err != nil {
			return PersistStats{}, r.err
		}
		if p := r.stat.Persist; p != nil {
			out.Snapshots += p.Snapshots
			out.LoggedBatches += p.LoggedBatches
			if p.LastSeq > out.LastSeq {
				out.LastSeq = p.LastSeq
			}
		}
	}
	return out, nil
}

// Trace returns the merged serialized op order: shard 0's sub-trace, then
// shard 1's, and so on. Splitting it back with ShardOf recovers each shard's
// exact serialized order. Empty unless the feed records traces.
func (s *ShardedFeed) Trace() ([]core.Op, error) {
	ops, _, err := s.TraceResults()
	return ops, err
}

// TraceResults returns the merged trace together with the per-op results
// each op produced when it executed (index-aligned with the ops). The
// equivalence tests replay the trace and compare against these.
func (s *ShardedFeed) TraceResults() ([]core.Op, []core.OpResult, error) {
	rs, err := s.broadcast(reqTrace)
	if err != nil {
		return nil, nil, err
	}
	var ops []core.Op
	var results []core.OpResult
	for _, r := range rs {
		ops = append(ops, r.trace...)
		results = append(results, r.traceRes...)
	}
	return ops, results, nil
}

// ShardTraces returns each shard's serialized op order separately.
func (s *ShardedFeed) ShardTraces() ([][]core.Op, error) {
	rs, err := s.broadcast(reqTrace)
	if err != nil {
		return nil, err
	}
	out := make([][]core.Op, len(rs))
	for i, r := range rs {
		out[i] = r.trace
	}
	return out, nil
}

func (s *ShardedFeed) stopWorker(w *worker) {
	s.haltWorker(w, reqStop)
}

func (s *ShardedFeed) haltWorker(w *worker, kind reqKind) {
	select {
	case w.mail <- request{kind: kind, resp: make(chan response, 1)}:
	case <-w.done:
	}
	<-w.done
}

// Close stops every shard worker and waits for them to drain. A persistent
// feed takes a final snapshot and checkpoints its store on the way down
// (drain-then-flush), so the next open recovers instantly. Further calls on
// the feed return ErrClosed; Close itself is idempotent.
func (s *ShardedFeed) Close() {
	s.closeOnce.Do(func() {
		for _, w := range s.workers {
			s.stopWorker(w)
		}
	})
}

// Kill stops every shard worker WITHOUT the final snapshot or store flush —
// the durable state is left exactly as the last applied batch wrote it,
// including an unflushed engine WAL. It simulates a process crash for the
// recovery tests; production paths use Close.
func (s *ShardedFeed) Kill() {
	s.closeOnce.Do(func() {
		for _, w := range s.workers {
			s.haltWorker(w, reqKill)
		}
	})
}

package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"grub/internal/chain"
	"grub/internal/core"
	"grub/internal/gas"
	"grub/internal/policy"
	"grub/internal/sim"
	"grub/internal/workload/ycsb"
)

// newTestFeed builds one shard's feed the way the gateway does: memoryless
// K=2 on a fresh simulated chain.
func newTestFeed(epochOps int) (*core.Feed, error) {
	c := chain.New(sim.NewClock(0), chain.DefaultParams(), gas.DefaultSchedule())
	return core.NewFeed(c, policy.NewMemoryless(2), core.Options{EpochOps: epochOps}), nil
}

func newSharded(t *testing.T, n, epochOps int, record bool) *ShardedFeed {
	t.Helper()
	sf, err := New(Options{Shards: n, RecordTrace: record},
		func(int) (*core.Feed, error) { return newTestFeed(epochOps) })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sf.Close)
	return sf
}

func TestShardOf(t *testing.T) {
	if got := ShardOf("anything", 1); got != 0 {
		t.Errorf("ShardOf(_, 1) = %d, want 0", got)
	}
	if got := ShardOf("anything", 0); got != 0 {
		t.Errorf("ShardOf(_, 0) = %d, want 0", got)
	}
	// Deterministic and in range; over many keys every shard gets some.
	for _, n := range []int{2, 4, 8} {
		seen := make(map[int]int)
		for i := 0; i < 256; i++ {
			k := fmt.Sprintf("key%d", i)
			sh := ShardOf(k, n)
			if sh < 0 || sh >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", k, n, sh)
			}
			if sh != ShardOf(k, n) {
				t.Fatalf("ShardOf(%q, %d) not deterministic", k, n)
			}
			seen[sh]++
		}
		if len(seen) != n {
			t.Errorf("n=%d: only %d shards hit over 256 keys: %v", n, len(seen), seen)
		}
	}
}

// TestSingleShardMatchesPlainFeed pins the degenerate case: a 1-shard
// ShardedFeed is byte-for-byte the single worker feed.
func TestSingleShardMatchesPlainFeed(t *testing.T) {
	sf := newSharded(t, 1, 4, true)
	ops := core.FromWorkload(ycsb.NewDriver(ycsb.WorkloadA, 16, 32, 3).Generate(40))
	got, err := sf.Do(ops)
	if err != nil {
		t.Fatal(err)
	}

	ref, _ := newTestFeed(4)
	want := core.ApplyOps(ref, ops)
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || got[i].Found != want[i].Found ||
			!bytes.Equal(got[i].Value, want[i].Value) || got[i].Err != want[i].Err {
			t.Errorf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	st, err := sf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 1 || st.Ops != len(ops) || st.Batches != 1 {
		t.Errorf("stats shards/ops/batches = %d/%d/%d, want 1/%d/1", st.Shards, st.Ops, st.Batches, len(ops))
	}
	if st.Feed != ref.Stats() {
		t.Errorf("aggregate stats diverge from plain feed:\n got %+v\nwant %+v", st.Feed, ref.Stats())
	}
	trace, err := sf.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != len(ops) {
		t.Errorf("trace has %d ops, want %d", len(trace), len(ops))
	}
}

// TestScatterGatherOrder checks that a mixed batch comes back in the
// caller's order with per-key read-your-write visibility across an epoch
// boundary, regardless of which shard served each op.
func TestScatterGatherOrder(t *testing.T) {
	sf := newSharded(t, 4, 1, false) // EpochOps=1: every write flushes
	var ops []core.Op
	for i := 0; i < 16; i++ {
		ops = append(ops, core.Op{Type: "write", Key: fmt.Sprintf("k%d", i), Value: []byte{byte(i)}})
	}
	for i := 0; i < 16; i++ {
		ops = append(ops, core.Op{Type: "read", Key: fmt.Sprintf("k%d", i)})
	}
	// A batch is atomic per shard: each shard executes its writes before
	// its reads, so every read must deliver its key's value.
	results, err := sf.Do(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ops) {
		t.Fatalf("got %d results, want %d", len(results), len(ops))
	}
	for i := 0; i < 16; i++ {
		r := results[16+i]
		if r.Key != fmt.Sprintf("k%d", i) {
			t.Fatalf("result %d routed to wrong slot: %+v", 16+i, r)
		}
		if !r.Found || !bytes.Equal(r.Value, []byte{byte(i)}) {
			t.Errorf("read k%d = (%v, %v), want (true, [%d])", i, r.Found, r.Value, i)
		}
	}
}

// TestStatsAggregation checks the aggregate is the field-wise sum of the
// per-shard snapshots and gas/op nets out each shard's genesis.
func TestStatsAggregation(t *testing.T) {
	sf := newSharded(t, 4, 4, false)
	ops := core.FromWorkload(ycsb.NewDriver(ycsb.WorkloadB, 32, 32, 9).Generate(64))
	if _, err := sf.Do(ops); err != nil {
		t.Fatal(err)
	}
	st, err := sf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("shards = %d (%d entries), want 4", st.Shards, len(st.PerShard))
	}
	var sum core.FeedStats
	sumOps := 0
	var sumBase gas.Gas
	for i, p := range st.PerShard {
		if p.Shard != i {
			t.Errorf("per-shard entry %d has index %d", i, p.Shard)
		}
		sum = addFeedStats(sum, p.Feed)
		sumOps += p.Ops
		sumBase += p.BaseGas
	}
	if st.Feed != sum {
		t.Errorf("aggregate != sum of shards:\n got %+v\nwant %+v", st.Feed, sum)
	}
	if st.Ops != sumOps || st.Ops != len(ops) {
		t.Errorf("ops = %d (shard sum %d), want %d", st.Ops, sumOps, len(ops))
	}
	if want := float64(sum.FeedGas-sumBase) / float64(sumOps); st.GasPerOp != want {
		t.Errorf("gas/op = %v, want %v", st.GasPerOp, want)
	}
}

func TestClosed(t *testing.T) {
	sf, err := New(Options{Shards: 2}, func(int) (*core.Feed, error) { return newTestFeed(4) })
	if err != nil {
		t.Fatal(err)
	}
	sf.Close()
	sf.Close() // idempotent
	if _, err := sf.Do([]core.Op{{Type: "read", Key: "k"}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Do after Close = %v, want ErrClosed", err)
	}
	if _, err := sf.Stats(); !errors.Is(err, ErrClosed) {
		t.Errorf("Stats after Close = %v, want ErrClosed", err)
	}
	if _, err := sf.Trace(); !errors.Is(err, ErrClosed) {
		t.Errorf("Trace after Close = %v, want ErrClosed", err)
	}
}

func TestBuildError(t *testing.T) {
	boom := errors.New("boom")
	if _, err := New(Options{Shards: 4}, func(i int) (*core.Feed, error) {
		if i == 2 {
			return nil, boom
		}
		return newTestFeed(4)
	}); !errors.Is(err, boom) {
		t.Fatalf("New with failing builder = %v, want boom", err)
	}
}

// TestShardedEquivalence is the headline correctness result: a sharded feed
// hammered by 32 concurrent clients must match, exactly, N independent
// single feeds each replaying its shard's serialized sub-trace — per-key
// results, delivered counts and total gas. Run under -race this doubles as
// the data-race check on the scatter-gather engine.
func TestShardedEquivalence(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const (
				clients        = 32
				batchesPerClnt = 4
				opsPerBatch    = 8
				records        = 24
				epochOps       = 8
			)
			sf := newSharded(t, shards, epochOps, true)

			// Preload the shared YCSB key space, then hammer concurrently.
			preload := core.FromWorkload(ycsb.NewDriver(ycsb.WorkloadA, records, 32, 1).Preload())
			if _, err := sf.Do(preload); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for ci := 0; ci < clients; ci++ {
				wg.Add(1)
				go func(ci int) {
					defer wg.Done()
					d := ycsb.NewDriver(ycsb.WorkloadA, records, 32, uint64(1000+ci))
					for b := 0; b < batchesPerClnt; b++ {
						results, err := sf.Do(core.FromWorkload(d.Generate(opsPerBatch)))
						if err != nil {
							errs <- err
							return
						}
						for _, res := range results {
							if res.Err != "" {
								errs <- fmt.Errorf("op %q: %s", res.Key, res.Err)
								return
							}
						}
					}
				}(ci)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			traces, err := sf.ShardTraces()
			if err != nil {
				t.Fatal(err)
			}
			_, recorded, err := sf.TraceResults()
			if err != nil {
				t.Fatal(err)
			}
			got, err := sf.Stats()
			if err != nil {
				t.Fatal(err)
			}
			wantOps := len(preload) + clients*batchesPerClnt*opsPerBatch
			if got.Ops != wantOps {
				t.Errorf("ops = %d, want %d", got.Ops, wantOps)
			}

			// Replay each shard's serialized order through an independent
			// single feed; results and stats must match exactly.
			var wantAgg core.FeedStats
			ri := 0 // cursor into the merged recorded results
			totalTrace := 0
			for sh, trace := range traces {
				totalTrace += len(trace)
				for _, op := range trace {
					if w := ShardOf(op.Key, shards); w != sh {
						t.Fatalf("shard %d trace holds key %q owned by shard %d", sh, op.Key, w)
					}
				}
				ref, err := newTestFeed(epochOps)
				if err != nil {
					t.Fatal(err)
				}
				replayed := core.ApplyOps(ref, trace)
				for j, res := range replayed {
					rec := recorded[ri]
					ri++
					if res.Key != rec.Key || res.Found != rec.Found ||
						!bytes.Equal(res.Value, rec.Value) || res.Err != rec.Err {
						t.Errorf("shard %d op %d: replay %+v != recorded %+v", sh, j, res, rec)
					}
				}
				want := ref.Stats()
				if got.PerShard[sh].Feed != want {
					t.Errorf("shard %d stats diverge from replay:\n got %+v\nwant %+v", sh, got.PerShard[sh].Feed, want)
				}
				wantAgg = addFeedStats(wantAgg, want)
			}
			if totalTrace != wantOps {
				t.Errorf("shard traces hold %d ops, want %d", totalTrace, wantOps)
			}
			if got.Feed != wantAgg {
				t.Errorf("aggregate stats diverge from summed replays:\n got %+v\nwant %+v", got.Feed, wantAgg)
			}
			if got.Feed.Delivered == 0 {
				t.Error("no reads delivered — workload did not exercise the feed")
			}
		})
	}
}

// BenchmarkShardedFeed measures scatter-gather throughput at several shard
// counts (read-heavy YCSB-B batches from parallel clients).
func BenchmarkShardedFeed(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sf, err := New(Options{Shards: shards}, func(int) (*core.Feed, error) { return newTestFeed(8) })
			if err != nil {
				b.Fatal(err)
			}
			defer sf.Close()
			const records = 64
			if _, err := sf.Do(core.FromWorkload(ycsb.NewDriver(ycsb.WorkloadB, records, 32, 1).Preload())); err != nil {
				b.Fatal(err)
			}
			var mu sync.Mutex
			next := 0
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				ci := next
				next++
				mu.Unlock()
				d := ycsb.NewDriver(ycsb.WorkloadB, records, 32, uint64(100+ci))
				for pb.Next() {
					if _, err := sf.Do(core.FromWorkload(d.Generate(16))); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

package shard

import (
	"fmt"
	"sync"

	"grub/internal/repl"
)

// Replication hooks: with Options.Repl set, every shard keeps a bounded
// in-memory replication log — each applied batch with its post-apply
// (seq, root, count, height) anchor, the same anchor the query views
// advertise — and accepts three extra worker requests:
//
//   - Apply: replay one batch shipped from a leader through the normal
//     log-then-apply path, then verify the post-apply state against the
//     leader's anchor. A mismatch is a divergence: the shard refuses the
//     batch (rolling it back out of its durable log), halts replication for
//     itself, and keeps serving its last verified view.
//   - Reset: replace the shard's state wholesale with a bootstrap snapshot,
//     after verifying the restored state hashes to the snapshot's anchor.
//   - ReplSnapshot: produce such a snapshot at the shard's current seq.
//
// The log is the leader-side serving surface (ShardedFeed.ReplPage); the
// other three are the follower side. Any replicating feed can serve both
// roles, so followers chain.

// DefaultReplRetain is the per-shard replication log size when Options.Repl
// is set and ReplRetain is 0. A follower whose cursor falls more than this
// many batches behind bootstraps from a snapshot instead.
const DefaultReplRetain = 256

// DefaultReplRetainBytes bounds the same window by payload size (16 MiB per
// shard): entries retain their batches' full keys and values, so an
// entry-count cap alone would let a few huge batches pin unbounded memory.
// Whichever bound is hit first slides the floor.
const DefaultReplRetainBytes = 16 << 20

// ErrNotReplicating aliases repl.ErrNotReplicating: the feed was built
// without Options.Repl.
var ErrNotReplicating = repl.ErrNotReplicating

// replLog is one shard's bounded in-memory replication log: a contiguous
// window of anchored entries ending at lastSeq. The worker appends; HTTP
// serving goroutines read pages — a mutex (not the mailbox) keeps log polls
// off the write path.
type replLog struct {
	mu       sync.Mutex
	retain   int
	maxBytes int
	bytes    int // sum of entries' WireBytes
	lastSeq  uint64
	entries  []repl.Entry // contiguous, entries[len-1].Seq == lastSeq
}

func newReplLog(retain int) *replLog {
	if retain <= 0 {
		retain = DefaultReplRetain
	}
	return &replLog{retain: retain, maxBytes: DefaultReplRetainBytes}
}

// reset pins the log to seq with no retained entries (fresh shard, restored
// snapshot, or replication bootstrap).
func (l *replLog) reset(seq uint64) {
	l.mu.Lock()
	l.lastSeq = seq
	l.entries = l.entries[:0]
	l.bytes = 0
	l.mu.Unlock()
}

// append records one applied batch. Seq must be contiguous — the worker
// serializes appends, so a gap is a programming error.
func (l *replLog) append(e repl.Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.Seq != l.lastSeq+1 {
		panic(fmt.Sprintf("shard: replication log gap: appending seq %d after %d", e.Seq, l.lastSeq))
	}
	l.entries = append(l.entries, e)
	l.bytes += e.WireBytes()
	// Evict by entry count or payload bytes, whichever bound bites first
	// (always keeping the newest entry so the floor tracks lastSeq-1 at
	// worst).
	keep := 0
	for len(l.entries)-keep > 1 &&
		(len(l.entries)-keep > l.retain || l.bytes > l.maxBytes) {
		l.bytes -= l.entries[keep].WireBytes()
		keep++
	}
	if keep > 0 {
		// Copy down so the backing array stops pinning evicted batches.
		l.entries = append(l.entries[:0], l.entries[keep:]...)
	}
	l.lastSeq = e.Seq
}

// seq returns the last applied batch sequence.
func (l *replLog) seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// page serves the entries above cursor from, up to max, plus the floor (the
// lowest cursor still servable from the retained window). A cursor below the
// floor needs a snapshot bootstrap.
func (l *replLog) page(from uint64, max int) repl.LogPage {
	l.mu.Lock()
	defer l.mu.Unlock()
	floor := l.lastSeq - uint64(len(l.entries))
	p := repl.LogPage{FloorSeq: floor, LeaderSeq: l.lastSeq}
	if from < floor {
		p.SnapshotRequired = true
		return p
	}
	if from >= l.lastSeq {
		return p
	}
	start := int(from - floor)
	end := len(l.entries)
	if max > 0 && end-start > max {
		end = start + max
	}
	p.Entries = append([]repl.Entry(nil), l.entries[start:end]...)
	return p
}

// Compile-time check: ShardedFeed is the engine a repl.Follower replicates
// into.
var _ repl.Feed = (*ShardedFeed)(nil)

// replLogOf returns a shard's replication log, or ErrNotReplicating.
func (s *ShardedFeed) replLogOf(shard int) (*replLog, error) {
	if shard < 0 || shard >= len(s.workers) {
		return nil, fmt.Errorf("shard: shard %d out of range [0,%d)", shard, len(s.workers))
	}
	if s.replLogs[shard] == nil {
		return nil, ErrNotReplicating
	}
	return s.replLogs[shard], nil
}

// Seq returns a shard's replication cursor: the sequence of its last applied
// batch.
func (s *ShardedFeed) Seq(shard int) (uint64, error) {
	l, err := s.replLogOf(shard)
	if err != nil {
		return 0, err
	}
	return l.seq(), nil
}

// ReplPage serves one page of a shard's replication log above the cursor
// from — the leader side of log shipping. It reads the in-memory window
// without touching the shard worker.
func (s *ShardedFeed) ReplPage(shard int, from uint64, max int) (repl.LogPage, error) {
	l, err := s.replLogOf(shard)
	if err != nil {
		return repl.LogPage{}, err
	}
	return l.page(from, max), nil
}

// replRequest round-trips one replication request through a shard's worker.
func (s *ShardedFeed) replRequest(shard int, req request) (response, error) {
	if _, err := s.replLogOf(shard); err != nil {
		return response{}, err
	}
	w := s.workers[shard]
	resp := make(chan response, 1)
	req.resp = resp
	if err := s.send(w, req); err != nil {
		return response{}, err
	}
	return s.recv(w, resp)
}

// Apply replays one shipped batch on a shard through the normal
// log-then-apply path and verifies the post-apply anchor. On divergence the
// batch is rolled back out of the durable log, the shard's replication
// halts (every later Apply returns the same DivergenceError), and the
// last verified read view stays published.
func (s *ShardedFeed) Apply(shard int, e repl.Entry) error {
	r, err := s.replRequest(shard, request{kind: reqRepl, entry: &e})
	if err != nil {
		return err
	}
	return r.err
}

// ReplSnapshot produces a consistent bootstrap snapshot of one shard at its
// current sequence, anchored by the shard's root and count.
func (s *ShardedFeed) ReplSnapshot(shard int) (*repl.Snapshot, error) {
	r, err := s.replRequest(shard, request{kind: reqReplSnap})
	if err != nil {
		return nil, err
	}
	return r.snap, r.err
}

// Reset replaces a shard's state wholesale with a bootstrap snapshot after
// verifying the restored state hashes to the snapshot's anchor. On a
// persistent shard the local log (superseded wholesale, possibly from a
// stale or diverged history) is dropped and the snapshot becomes the new
// durable base. It returns the shard's new cursor.
func (s *ShardedFeed) Reset(shard int, snap *repl.Snapshot) (uint64, error) {
	if snap == nil || snap.Feed == nil {
		return 0, fmt.Errorf("shard: nil bootstrap snapshot")
	}
	r, err := s.replRequest(shard, request{kind: reqReplReset, snap: snap})
	if err != nil {
		return 0, err
	}
	if r.err != nil {
		return 0, r.err
	}
	return snap.Seq, nil
}

module grub

go 1.24

// Command grubd serves the multi-tenant GRuB feed gateway over HTTP.
//
// Feeds are created at runtime through the API; each one runs on its own
// simulated chain, hash-partitioned across "shards"-many worker goroutines
// when created with shards in its config (see internal/server and
// internal/shard).
//
// With -data-dir the gateway is durable: every applied batch is logged
// through a per-shard write-ahead log before it executes, -snapshot-every
// controls how often each shard compacts its log into a state snapshot, and
// a restart with the same -data-dir recovers every feed — same keys, same
// replication decisions going forward, same cumulative Gas.
//
// With -follow the daemon runs as a read-only replica of another grubd: it
// mirrors the leader's feeds, ships their per-shard replication logs
// (bootstrapping from verified snapshots when behind), and serves the same
// Merkle-proven reads from the replicated state. Writes answer 403 with a
// Leader header pointing at the leader (the Go client auto-follows it).
// Combine with -data-dir for a follower that resumes tailing from its own
// WAL and cursor after a restart.
//
// With -join the daemon runs as one node of a self-routing gateway cluster
// (internal/cluster): the flag lists the other members' URLs, feeds are
// placed across nodes by consistent hashing, every node accepts every
// request — non-owners transparently forward writes to the owner and serve
// verified reads from their local replica — feeds migrate live between
// nodes (POST /cluster/feeds/{id}/move), and a dead owner's feeds fail
// over to an anchor-verified successor automatically. -advertise sets the
// URL the other members reach this node at (defaults to the bound listen
// address, which only works when that address is routable), and -node-id
// sets a display name. Combine with -data-dir to persist the node's
// placement map alongside its feeds. -join and -follow are mutually
// exclusive: a cluster node is already a replica of every feed it does not
// own.
//
// On SIGINT or SIGTERM the daemon shuts down gracefully: it stops accepting
// connections, finishes in-flight requests, drains every feed worker —
// taking a final snapshot and flushing each feed's store when persistence
// is on — and exits 0.
//
// Observability: -slow-ms N logs one JSON line (with the batch's trace ID
// and per-stage span breakdown) for every write batch slower than N
// milliseconds, and -debug-addr serves net/http/pprof on a separate
// listener, kept off the public API port. GET /metrics serves Prometheus
// text including per-stage latency histograms, and clients can tag a batch
// with an X-Grub-Trace header to correlate it across the gateway's spans.
//
// Usage:
//
//	grubd [-addr :8080] [-max-body 8388608] [-data-dir /var/lib/grubd]
//	      [-snapshot-every 256] [-sync-writes] [-follow http://leader:8080]
//	      [-join http://b:8080,http://c:8080] [-advertise http://a:8080]
//	      [-node-id a] [-repl-retain 256] [-slow-ms 0] [-debug-addr addr]
//	      [-version]
//
// Then, for example:
//
//	curl -X POST localhost:8080/feeds -d '{"id":"prices","policy":"memoryless","k":2,"shards":4}'
//	curl -X POST localhost:8080/feeds/prices/ops \
//	     -d '{"ops":[{"type":"write","key":"ETH-USD","value":"MjE1MC43NQ=="}]}'
//	curl localhost:8080/feeds/prices/stats
//	curl localhost:8080/feeds/prices/shards
//	curl -X POST localhost:8080/feeds/prices/snapshot
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"grub/internal/cluster"
	"grub/internal/repl"
	"grub/internal/server"
)

// syncWriter serializes banner writes. The drain goroutine logs on signal
// delivery, which establishes no happens-before edge with the serve
// goroutine's own writes, so the shared writer needs a lock.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func main() {
	if err := run(os.Args[1:], os.Stdout, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "grubd:", err)
		os.Exit(1)
	}
}

// drainTimeout bounds how long shutdown waits for in-flight requests.
const drainTimeout = 10 * time.Second

// run parses flags and serves until the listener fails, stop is closed, or
// SIGINT/SIGTERM arrives (graceful shutdown, nil error). onReady (optional)
// receives the bound address after the listener is up; tests use it to find
// the ephemeral port.
func run(args []string, w io.Writer, onReady func(net.Addr), stop <-chan struct{}) error {
	fs := flag.NewFlagSet("grubd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "POST body size cap in bytes (413 beyond it)")
	dataDir := fs.String("data-dir", "", "persist feeds under this directory and recover them on start (empty = in-memory)")
	snapshotEvery := fs.Int("snapshot-every", 256, "per-shard batches between automatic snapshots (0 = shutdown/explicit only)")
	syncWrites := fs.Bool("sync-writes", false, "fsync every durable log append")
	follow := fs.String("follow", "", "replicate from this leader gateway URL and serve read-only (follower mode)")
	join := fs.String("join", "", "comma-separated peer gateway URLs to form a self-routing cluster with (cluster mode)")
	advertise := fs.String("advertise", "", "URL the other cluster members reach this node at (default: the bound listen address)")
	nodeID := fs.String("node-id", "", "cluster display name for this node (default: the advertised URL)")
	replRetain := fs.Int("repl-retain", 0, "replication log entries retained per shard for followers (0 = default 256; further-behind followers bootstrap from a snapshot)")
	slowMS := fs.Int("slow-ms", 0, "log one JSON line with the per-stage span breakdown for every write batch slower than this many milliseconds (0 = off)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this separate listen address (empty = off)")
	version := fs.Bool("version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintf(w, "grubd %s\n", server.Version)
		return nil
	}
	if *follow != "" && *join != "" {
		return fmt.Errorf("-follow and -join are mutually exclusive: a cluster node already replicates every feed it does not own")
	}
	gopts := server.GatewayOptions{DataDir: *dataDir, SnapshotEvery: *snapshotEvery, SyncWrites: *syncWrites, ReplRetain: *replRetain}
	sc := serveConfig{
		addr: *addr, maxBody: *maxBody, follow: *follow,
		join: *join, advertise: *advertise, nodeID: *nodeID,
		slowOp: time.Duration(*slowMS) * time.Millisecond, debugAddr: *debugAddr,
	}
	return serve(sc, gopts, w, onReady, stop)
}

// serveConfig carries the HTTP-layer knobs from flag parsing to serve.
type serveConfig struct {
	addr      string
	maxBody   int64
	follow    string
	join      string
	advertise string
	nodeID    string
	slowOp    time.Duration
	debugAddr string
}

// debugServer serves net/http/pprof on its own listener. The profiling
// surface stays off the public API mux: an explicit mux with only the pprof
// routes, bound to an address the operator chose for it.
func debugServer(addr string) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{Handler: mux}, ln, nil
}

func serve(sc serveConfig, gopts server.GatewayOptions, w io.Writer, onReady func(net.Addr), stop <-chan struct{}) error {
	w = &syncWriter{w: w}
	g, err := server.NewGatewayWithOptions(gopts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", sc.addr)
	if err != nil {
		g.Close()
		return err
	}
	hc := server.HandlerConfig{MaxBodyBytes: sc.maxBody, SlowOp: sc.slowOp}
	var follower *repl.Follower
	if sc.follow != "" {
		follower = repl.NewFollower(repl.Options{Leader: sc.follow, Pipeline: g.Pipeline()}, g.ReplTarget())
		hc.Follower = follower
	}
	var node *cluster.Node
	if sc.join != "" {
		// The cluster node needs the bound listener first: with -addr :0
		// the advertised URL defaults to the ephemeral address.
		self := sc.advertise
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		var peers []string
		for _, p := range strings.Split(sc.join, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		statePath := ""
		if gopts.DataDir != "" {
			statePath = filepath.Join(gopts.DataDir, "cluster.json")
		}
		node, err = cluster.NewNode(cluster.Options{
			Self: self, NodeID: sc.nodeID, Peers: peers,
			Local: g.ClusterLocal(), StatePath: statePath,
			LoadDigest: g.Load().Snapshot,
		})
		if err != nil {
			ln.Close()
			g.Close()
			return err
		}
		hc.Cluster = node
	}
	var dbg *http.Server
	var dbgLn net.Listener
	if sc.debugAddr != "" {
		dbg, dbgLn, err = debugServer(sc.debugAddr)
		if err != nil {
			ln.Close()
			g.Close()
			return err
		}
	}
	srv := &http.Server{Handler: server.NewHandlerConfig(g, hc)}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	// The drainer waits for a shutdown trigger, then stops accepting
	// connections, finishes in-flight requests and drains the feed
	// workers. Serve returns ErrServerClosed once Shutdown begins; run
	// waits for the drain to complete on every exit path (failed too), so
	// returning means fully stopped — no leaked worker goroutines.
	failed := make(chan struct{})
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		select {
		case sig := <-sigc:
			fmt.Fprintf(w, "grubd: %v: draining and shutting down\n", sig)
		case <-stop:
		case <-failed:
		}
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		srv.Shutdown(ctx)
		if dbg != nil {
			dbg.Shutdown(ctx)
		}
		// Stop the replication tailers before their target drains.
		if follower != nil {
			follower.Close()
		}
		if node != nil {
			node.Close()
		}
		g.Close()
	}()

	if gopts.DataDir != "" {
		fmt.Fprintf(w, "grubd: persisting feeds under %s (%d recovered)\n", gopts.DataDir, len(g.Feeds()))
	}
	if follower != nil {
		follower.Start()
		fmt.Fprintf(w, "grubd: following leader %s (read-only replica)\n", follower.Leader())
	}
	if node != nil {
		node.Start()
		fmt.Fprintf(w, "grubd: cluster node %s (%d members)\n", node.Self(), len(node.Members()))
	}
	if sc.slowOp > 0 {
		fmt.Fprintf(w, "grubd: logging batches slower than %v\n", sc.slowOp)
	}
	if dbg != nil {
		go dbg.Serve(dbgLn)
		fmt.Fprintf(w, "grubd: pprof listening on http://%s/debug/pprof/\n", dbgLn.Addr())
	}
	fmt.Fprintf(w, "grubd: gateway listening on http://%s\n", ln.Addr())
	if onReady != nil {
		onReady(ln.Addr())
	}
	err = srv.Serve(ln)
	close(failed)
	<-drained
	if err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Command grubd serves the multi-tenant GRuB feed gateway over HTTP.
//
// Feeds are created at runtime through the API; each one runs on its own
// simulated chain behind a dedicated worker goroutine (see internal/server).
//
// Usage:
//
//	grubd [-addr :8080]
//
// Then, for example:
//
//	curl -X POST localhost:8080/feeds -d '{"id":"prices","policy":"memoryless","k":2}'
//	curl -X POST localhost:8080/feeds/prices/ops \
//	     -d '{"ops":[{"type":"write","key":"ETH-USD","value":"MjE1MC43NQ=="}]}'
//	curl localhost:8080/feeds/prices/stats
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"grub/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "grubd:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until the listener fails or stop is closed.
// onReady (optional) receives the bound address after the listener is up;
// tests use it to find the ephemeral port.
func run(args []string, w io.Writer, onReady func(net.Addr), stop <-chan struct{}) error {
	fs := flag.NewFlagSet("grubd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return serve(*addr, w, onReady, stop)
}

func serve(addr string, w io.Writer, onReady func(net.Addr), stop <-chan struct{}) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	g := server.NewGateway()
	srv := &http.Server{Handler: server.NewHandler(g)}
	fmt.Fprintf(w, "grubd: gateway listening on http://%s\n", ln.Addr())
	if stop != nil {
		go func() {
			<-stop
			srv.Close()
			g.Close()
		}()
	}
	if onReady != nil {
		onReady(ln.Addr())
	}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

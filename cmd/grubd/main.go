// Command grubd serves the multi-tenant GRuB feed gateway over HTTP.
//
// Feeds are created at runtime through the API; each one runs on its own
// simulated chain, hash-partitioned across "shards"-many worker goroutines
// when created with shards in its config (see internal/server and
// internal/shard).
//
// On SIGINT or SIGTERM the daemon shuts down gracefully: it stops accepting
// connections, finishes in-flight requests, drains every feed worker and
// exits 0.
//
// Usage:
//
//	grubd [-addr :8080] [-max-body 8388608]
//
// Then, for example:
//
//	curl -X POST localhost:8080/feeds -d '{"id":"prices","policy":"memoryless","k":2,"shards":4}'
//	curl -X POST localhost:8080/feeds/prices/ops \
//	     -d '{"ops":[{"type":"write","key":"ETH-USD","value":"MjE1MC43NQ=="}]}'
//	curl localhost:8080/feeds/prices/stats
//	curl localhost:8080/feeds/prices/shards
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"grub/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "grubd:", err)
		os.Exit(1)
	}
}

// drainTimeout bounds how long shutdown waits for in-flight requests.
const drainTimeout = 10 * time.Second

// run parses flags and serves until the listener fails, stop is closed, or
// SIGINT/SIGTERM arrives (graceful shutdown, nil error). onReady (optional)
// receives the bound address after the listener is up; tests use it to find
// the ephemeral port.
func run(args []string, w io.Writer, onReady func(net.Addr), stop <-chan struct{}) error {
	fs := flag.NewFlagSet("grubd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "POST body size cap in bytes (413 beyond it)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return serve(*addr, *maxBody, w, onReady, stop)
}

func serve(addr string, maxBody int64, w io.Writer, onReady func(net.Addr), stop <-chan struct{}) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	g := server.NewGateway()
	srv := &http.Server{Handler: server.NewHandlerConfig(g, server.HandlerConfig{MaxBodyBytes: maxBody})}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	// The drainer waits for a shutdown trigger, then stops accepting
	// connections, finishes in-flight requests and drains the feed
	// workers. Serve returns ErrServerClosed once Shutdown begins; run
	// waits for the drain to complete on every exit path (failed too), so
	// returning means fully stopped — no leaked worker goroutines.
	failed := make(chan struct{})
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		select {
		case sig := <-sigc:
			fmt.Fprintf(w, "grubd: %v: draining and shutting down\n", sig)
		case <-stop:
		case <-failed:
		}
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		srv.Shutdown(ctx)
		g.Close()
	}()

	fmt.Fprintf(w, "grubd: gateway listening on http://%s\n", ln.Addr())
	if onReady != nil {
		onReady(ln.Addr())
	}
	err = srv.Serve(ln)
	close(failed)
	<-drained
	if err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

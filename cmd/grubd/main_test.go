package main

import (
	"bytes"
	"net"
	"testing"

	"grub/internal/server"
)

func TestServeRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	ready := make(chan net.Addr, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0"}, &buf,
			func(a net.Addr) { ready <- a }, stop)
	}()
	addr := <-ready

	c := server.NewClient("http://" + addr.String())
	if err := c.CreateFeed(server.FeedConfig{ID: "t", EpochOps: 2}); err != nil {
		t.Fatal(err)
	}
	results, err := c.Do("t", []server.Op{
		{Type: "write", Key: "k", Value: []byte("v")},
		{Type: "write", Key: "k2", Value: []byte("v2")},
		{Type: "read", Key: "k"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || !results[2].Found || string(results[2].Value) != "v" {
		t.Errorf("roundtrip results = %+v", results)
	}
	st, err := c.Stats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 3 || st.Feed.FeedGas == 0 {
		t.Errorf("stats = %+v", st)
	}

	close(stop)
	if err := <-errc; err != nil {
		t.Fatalf("serve returned: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("listening")) {
		t.Errorf("banner missing: %q", buf.String())
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestBadAddr(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-addr", "256.256.256.256:0"}, &buf, nil, nil); err == nil {
		t.Fatal("bad addr accepted")
	}
}

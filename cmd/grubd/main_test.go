package main

import (
	"bytes"
	"net"
	"net/http"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"grub/internal/cluster"
	"grub/internal/server"
)

func TestServeRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	ready := make(chan net.Addr, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0"}, &buf,
			func(a net.Addr) { ready <- a }, stop)
	}()
	addr := <-ready

	c := server.NewClient("http://" + addr.String())
	if err := c.CreateFeed(server.FeedConfig{ID: "t", EpochOps: 2}); err != nil {
		t.Fatal(err)
	}
	results, err := c.Do("t", []server.Op{
		{Type: "write", Key: "k", Value: []byte("v")},
		{Type: "write", Key: "k2", Value: []byte("v2")},
		{Type: "read", Key: "k"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || !results[2].Found || string(results[2].Value) != "v" {
		t.Errorf("roundtrip results = %+v", results)
	}
	st, err := c.Stats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 3 || st.Feed.FeedGas == 0 {
		t.Errorf("stats = %+v", st)
	}

	close(stop)
	if err := <-errc; err != nil {
		t.Fatalf("serve returned: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("listening")) {
		t.Errorf("banner missing: %q", buf.String())
	}
}

// TestGracefulSignalShutdown sends a real SIGINT to the test process once
// the daemon is serving: the signal handler (not the Go runtime default)
// must catch it, drain the gateway and make run return nil — the wiring
// that lets a deployed grubd exit 0 on ctrl-C or SIGTERM.
func TestGracefulSignalShutdown(t *testing.T) {
	var buf bytes.Buffer
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0"}, &buf,
			func(a net.Addr) { ready <- a }, nil)
	}()
	addr := <-ready

	// Real traffic before the signal, so the drain has feeds to close.
	c := server.NewClient("http://" + addr.String())
	if err := c.CreateFeed(server.FeedConfig{ID: "t", Shards: 2, EpochOps: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("t", []server.Op{{Type: "write", Key: "k", Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after SIGINT, want nil (exit 0)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down within 10s of SIGINT")
	}
	if !bytes.Contains(buf.Bytes(), []byte("draining")) {
		t.Errorf("drain banner missing: %q", buf.String())
	}
	// The listener is released: new connections are refused.
	if _, err := c.Feeds(); err == nil {
		t.Error("gateway still serving after shutdown")
	}
}

// TestDataDirSurvivesRestart drives the full daemon durability loop: serve
// with -data-dir, load a feed, shut down gracefully (drain-then-flush),
// start a second daemon on the same directory and find the feed recovered —
// same keys, same stats.
func TestDataDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	start := func() (*server.Client, chan struct{}, chan error, *bytes.Buffer) {
		var buf bytes.Buffer
		ready := make(chan net.Addr, 1)
		stop := make(chan struct{})
		errc := make(chan error, 1)
		go func() {
			errc <- run([]string{"-addr", "127.0.0.1:0", "-data-dir", dir, "-snapshot-every", "2"}, &buf,
				func(a net.Addr) { ready <- a }, stop)
		}()
		addr := <-ready
		return server.NewClient("http://" + addr.String()), stop, errc, &buf
	}

	c1, stop1, errc1, _ := start()
	if err := c1.CreateFeed(server.FeedConfig{ID: "t", Shards: 2, EpochOps: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Do("t", []server.Op{
		{Type: "write", Key: "k", Value: []byte("v")},
		{Type: "read", Key: "k"},
	}); err != nil {
		t.Fatal(err)
	}
	before, err := c1.Stats("t")
	if err != nil {
		t.Fatal(err)
	}
	close(stop1)
	if err := <-errc1; err != nil {
		t.Fatalf("first daemon: %v", err)
	}

	c2, stop2, errc2, buf2 := start()
	defer func() {
		close(stop2)
		<-errc2
	}()
	results, err := c2.Do("t", []server.Op{{Type: "read", Key: "k"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Found || string(results[0].Value) != "v" {
		t.Fatalf("recovered read = %+v, want k=v", results)
	}
	after, err := c2.Stats("t")
	if err != nil {
		t.Fatal(err)
	}
	// One extra read executed since the snapshot; everything before it must
	// carry over exactly.
	if after.Ops != before.Ops+1 || after.Feed.Delivered != before.Feed.Delivered+1 {
		t.Errorf("stats did not carry over: before %+v after %+v", before, after)
	}
	if !bytes.Contains(buf2.Bytes(), []byte("persisting feeds under")) {
		t.Errorf("persistence banner missing: %q", buf2.String())
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestBadAddr(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-addr", "256.256.256.256:0"}, &buf, nil, nil); err == nil {
		t.Fatal("bad addr accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-version"}, &buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	want := "grubd " + server.Version + "\n"
	if buf.String() != want {
		t.Errorf("-version printed %q, want %q", buf.String(), want)
	}
}

// TestObservabilityFlags starts a daemon with -slow-ms and -debug-addr:
// the pprof index must serve on the separate debug listener (and only
// there), and the slow-op banner must announce the threshold. The slow-op
// log itself goes to stderr, so its content is pinned at the server layer.
func TestObservabilityFlags(t *testing.T) {
	var buf bytes.Buffer
	ready := make(chan net.Addr, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-slow-ms", "1", "-debug-addr", "127.0.0.1:0"},
			&buf, func(a net.Addr) { ready <- a }, stop)
	}()
	addr := <-ready

	// Banners are flushed before onReady fires, so reading buf here does
	// not race with the serve goroutine.
	banner := buf.String()
	if !strings.Contains(banner, "logging batches slower than 1ms") {
		t.Errorf("slow-op banner missing: %q", banner)
	}
	m := regexp.MustCompile(`pprof listening on http://([^/\s]+)/`).FindStringSubmatch(banner)
	if m == nil {
		t.Fatalf("pprof banner missing: %q", banner)
	}
	resp, err := http.Get("http://" + m[1] + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("debug listener /debug/pprof/ = HTTP %d, want 200", resp.StatusCode)
	}
	// The public API port must not expose the profiling surface.
	resp, err = http.Get("http://" + addr.String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof exposed on the public API listener")
	}

	close(stop)
	if err := <-errc; err != nil {
		t.Fatalf("serve returned: %v", err)
	}
}

// TestFollowerMode runs a leader and a follower daemon end to end: the
// follower mirrors the leader's feed, serves it read-only (403 + Leader
// header on writes, which the client auto-follows), and reports its
// replication health on /repl/status.
func TestFollowerMode(t *testing.T) {
	leaderReady := make(chan net.Addr, 1)
	leaderStop := make(chan struct{})
	leaderErr := make(chan error, 1)
	var leaderBuf, followerBuf bytes.Buffer
	go func() {
		leaderErr <- run([]string{"-addr", "127.0.0.1:0"}, &leaderBuf,
			func(a net.Addr) { leaderReady <- a }, leaderStop)
	}()
	leaderURL := "http://" + (<-leaderReady).String()

	followerReady := make(chan net.Addr, 1)
	followerStop := make(chan struct{})
	followerErr := make(chan error, 1)
	go func() {
		followerErr <- run([]string{"-addr", "127.0.0.1:0", "-follow", leaderURL}, &followerBuf,
			func(a net.Addr) { followerReady <- a }, followerStop)
	}()
	followerURL := "http://" + (<-followerReady).String()

	leaderC := server.NewClient(leaderURL)
	if err := leaderC.CreateFeed(server.FeedConfig{ID: "f", Shards: 2, EpochOps: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := leaderC.Do("f", []server.Op{{Type: "write", Key: "k", Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}

	// The follower replicates the feed and serves a verified read.
	deadline := time.Now().Add(30 * time.Second)
	for {
		res, err := server.NewVerifyingClient(followerURL).Get("f", "k")
		if err == nil && res.Found && string(res.Record.Value) == "v" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never served the replicated write (last err %v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A write pointed at the follower lands on the leader via the Leader
	// redirect.
	if _, err := server.NewClient(followerURL).Do("f", []server.Op{{Type: "write", Key: "k2", Value: []byte("v2")}}); err != nil {
		t.Fatalf("auto-followed write failed: %v", err)
	}

	close(followerStop)
	if err := <-followerErr; err != nil {
		t.Fatalf("follower returned: %v", err)
	}
	close(leaderStop)
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader returned: %v", err)
	}
	if !bytes.Contains(followerBuf.Bytes(), []byte("following leader")) {
		t.Errorf("follower banner missing: %q", followerBuf.String())
	}
}

// TestClusterMode boots a 2-node cluster via -join: both daemons must
// banner as cluster nodes, report an enabled quorate cluster on
// /cluster/status, and route a write from either node to the feed's owner.
func TestClusterMode(t *testing.T) {
	// Reserve two ports so each node can name the other in -join before
	// either is listening.
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	urls := []string{"http://" + addrs[0], "http://" + addrs[1]}

	bufs := make([]bytes.Buffer, 2)
	stops := make([]chan struct{}, 2)
	errcs := make([]chan error, 2)
	for i := range addrs {
		stops[i] = make(chan struct{})
		errcs[i] = make(chan error, 1)
		ready := make(chan net.Addr, 1)
		go func(i int) {
			errcs[i] <- run([]string{"-addr", addrs[i], "-join", urls[1-i]}, &bufs[i],
				func(a net.Addr) { ready <- a }, stops[i])
		}(i)
		<-ready
	}

	// Both nodes report an enabled cluster with 2 members, all alive.
	cc := &cluster.Client{}
	deadline := time.Now().Add(10 * time.Second)
	for _, u := range urls {
		for {
			st, err := cc.Status(u)
			if err == nil && st.Enabled && st.Quorum && len(st.Members) == 2 &&
				st.Members[0].Alive && st.Members[1].Alive {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s cluster status never became quorate (last %+v, err %v)", u, st, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Create on node 0, write through node 1: the cluster routes both to
	// the owner, wherever the ring placed the feed.
	c0 := server.NewClient(urls[0])
	c0.Retry = server.DefaultRetry
	if err := c0.CreateFeed(server.FeedConfig{ID: "cf", Shards: 2, EpochOps: 1}); err != nil {
		t.Fatal(err)
	}
	c1 := server.NewClient(urls[1])
	c1.Retry = server.DefaultRetry
	if _, err := c1.Do("cf", []server.Op{{Type: "write", Key: "k", Value: []byte("v")}}); err != nil {
		t.Fatalf("write via second node: %v", err)
	}

	// Both nodes eventually serve the verified read locally.
	deadline = time.Now().Add(30 * time.Second)
	for _, u := range urls {
		for {
			res, err := server.NewVerifyingClient(u).Get("cf", "k")
			if err == nil && res.Found && string(res.Record.Value) == "v" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never served the write (last err %v)", u, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	for i := range stops {
		close(stops[i])
		if err := <-errcs[i]; err != nil {
			t.Fatalf("node %d returned: %v", i, err)
		}
		if !bytes.Contains(bufs[i].Bytes(), []byte("cluster node")) {
			t.Errorf("node %d cluster banner missing: %q", i, bufs[i].String())
		}
	}
}

// TestJoinFollowExclusive: -follow and -join cannot be combined.
func TestJoinFollowExclusive(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-addr", "127.0.0.1:0", "-join", "http://a", "-follow", "http://b"}, &buf, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v, want mutual-exclusion error", err)
	}
}

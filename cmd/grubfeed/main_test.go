package main

import "testing"

func TestPolicies(t *testing.T) {
	for _, pol := range []string{"memoryless", "memorizing", "bl1", "bl2"} {
		if err := run([]string{"-ops", "48", "-epoch", "8", "-policy", pol}); err != nil {
			t.Errorf("policy %s: %v", pol, err)
		}
	}
}

func TestUnknownPolicy(t *testing.T) {
	if err := run([]string{"-policy", "bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

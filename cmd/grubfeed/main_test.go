package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"grub/internal/repl"
	"grub/internal/server"
)

func TestPolicies(t *testing.T) {
	for _, pol := range []string{"memoryless", "memorizing", "bl1", "bl2"} {
		var buf bytes.Buffer
		if err := run([]string{"-ops", "48", "-epoch", "8", "-policy", pol}, &buf); err != nil {
			t.Errorf("policy %s: %v", pol, err)
		}
		if !strings.Contains(buf.String(), "results: delivered=") {
			t.Errorf("policy %s: results line missing:\n%s", pol, buf.String())
		}
	}
}

func TestUnknownPolicy(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-policy", "bogus"}, &buf); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestLoadStandalone runs the gateway load driver end to end against an
// in-process gateway (run with -race this covers the whole HTTP stack).
func TestLoadStandalone(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-load", "-feeds", "3", "-clients", "6", "-batches", "2",
		"-batch", "4", "-records", "8", "-workload", "B"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ops/sec") {
		t.Errorf("throughput line missing:\n%s", out)
	}
	if !strings.Contains(out, "load0") || !strings.Contains(out, "load2") {
		t.Errorf("per-feed rows missing:\n%s", out)
	}
}

// TestLoadSharded drives the load path with sharded feeds.
func TestLoadSharded(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-load", "-feeds", "2", "-clients", "4", "-batches", "2",
		"-batch", "4", "-records", "8", "-workload", "B", "-shards", "4"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4 shards each") {
		t.Errorf("shard banner missing:\n%s", out)
	}
	if !strings.Contains(out, "ops/sec") {
		t.Errorf("throughput line missing:\n%s", out)
	}
}

// TestLoadPersistentGateway points the load driver at a gateway running
// with a data directory: the summary must report the data-dir and the
// snapshot count.
func TestLoadPersistentGateway(t *testing.T) {
	dir := t.TempDir()
	g, err := server.NewGatewayWithOptions(server.GatewayOptions{DataDir: dir, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	srv := httptest.NewServer(server.NewHandler(g))
	defer srv.Close()

	var buf bytes.Buffer
	args := []string{"-load", "-gateway", srv.URL, "-feeds", "2", "-clients", "4",
		"-batches", "3", "-batch", "4", "-records", "8", "-workload", "B"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "persistence: data-dir "+dir) {
		t.Errorf("data-dir line missing:\n%s", out)
	}
	if !strings.Contains(out, "snapshots taken") {
		t.Errorf("snapshot count missing:\n%s", out)
	}
	// The in-memory standalone path must NOT claim persistence.
	var memBuf bytes.Buffer
	memArgs := []string{"-load", "-feeds", "1", "-clients", "2", "-batches", "1",
		"-batch", "4", "-records", "8", "-workload", "B"}
	if err := run(memArgs, &memBuf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(memBuf.String(), "persistence:") {
		t.Errorf("in-memory load claims persistence:\n%s", memBuf.String())
	}
}

func TestLoadUnknownWorkload(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-load", "-workload", "Z"}, &buf); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestLoadRejectsBadCounts(t *testing.T) {
	for _, args := range [][]string{
		{"-load", "-feeds", "0"},
		{"-load", "-clients", "0"},
		{"-load", "-batches", "-1"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestVerifyStandalone drives the authenticated read path end to end: an
// in-process gateway, concurrent verifying light clients, every proof
// checked against the advertised roots.
func TestVerifyStandalone(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-verify", "-clients", "4", "-reads", "8",
		"-records", "24", "-shards", "2"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "verified ops/sec") || !strings.Contains(out, "proof bytes/op") {
		t.Errorf("verify summary missing:\n%s", out)
	}
	if !strings.Contains(out, "shard 0 root") || !strings.Contains(out, "shard 1 root") {
		t.Errorf("per-shard root lines missing:\n%s", out)
	}
}

// TestVerifyAgainstReplicas spreads the verified readers across follower
// gateways: an in-process leader takes the writes, two followers replicate
// them, and every proof verifies against the replicas' advertised roots.
func TestVerifyAgainstReplicas(t *testing.T) {
	leader := server.NewGateway()
	defer leader.Close()
	leaderSrv := httptest.NewServer(server.NewHandler(leader))
	defer leaderSrv.Close()

	var replicas []string
	for i := 0; i < 2; i++ {
		fg := server.NewGateway()
		defer fg.Close()
		f := repl.NewFollower(repl.Options{
			Leader: leaderSrv.URL,
			Poll:   2 * time.Millisecond, Refresh: 10 * time.Millisecond,
		}, fg.ReplTarget())
		fsrv := httptest.NewServer(server.NewHandlerConfig(fg, server.HandlerConfig{Follower: f}))
		defer fsrv.Close()
		f.Start()
		defer f.Close()
		replicas = append(replicas, fsrv.URL)
	}

	var buf bytes.Buffer
	args := []string{"-verify", "-gateway", leaderSrv.URL,
		"-replicas", strings.Join(replicas, ","),
		"-clients", "4", "-reads", "8", "-records", "24", "-shards", "2"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 read node(s)") || !strings.Contains(out, "caught up") {
		t.Errorf("replica summary missing:\n%s", out)
	}
	if !strings.Contains(out, "verified ops/sec") {
		t.Errorf("verify summary missing:\n%s", out)
	}
}

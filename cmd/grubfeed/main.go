// Command grubfeed runs an end-to-end GRuB feed demo on the simulated
// chain: it feeds a drifting price stream, issues reads with a shifting
// read/write mix, and reports the replication decisions and Gas as they
// happen.
//
// Usage:
//
//	grubfeed [-ops 256] [-policy memoryless|memorizing|bl1|bl2] [-k 2]
package main

import (
	"flag"
	"fmt"
	"os"

	"grub/internal/ads"
	"grub/internal/chain"
	"grub/internal/core"
	"grub/internal/gas"
	"grub/internal/policy"
	"grub/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "grubfeed:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("grubfeed", flag.ContinueOnError)
	ops := fs.Int("ops", 256, "operations to drive")
	polName := fs.String("policy", "memoryless", "replication policy: memoryless|memorizing|bl1|bl2")
	k := fs.Int("k", 2, "policy parameter K")
	epoch := fs.Int("epoch", 16, "operations per epoch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var pol policy.Policy
	switch *polName {
	case "memoryless":
		pol = policy.NewMemoryless(*k)
	case "memorizing":
		pol = policy.NewMemorizing(*k, 1)
	case "bl1":
		pol = policy.Never{}
	case "bl2":
		pol = policy.Always{}
	default:
		return fmt.Errorf("unknown policy %q", *polName)
	}

	c := chain.New(sim.NewClock(0), chain.DefaultParams(), gas.DefaultSchedule())
	f := core.NewFeed(c, pol, core.Options{EpochOps: *epoch})
	fmt.Printf("GRuB feed demo: policy=%s epoch=%d ops=%d\n\n", pol.Name(), *epoch, *ops)

	r := sim.NewRand(1)
	price := uint64(200_00)
	lastGas := f.FeedGas()
	for i := 0; i < *ops; i++ {
		// Phase-shifted mix: write-heavy first half, read-heavy second.
		readChance := 0.2
		if i > *ops/2 {
			readChance = 0.9
		}
		if r.Float64() < readChance {
			if err := f.Read("ETH-USD"); err != nil {
				return err
			}
		} else {
			price += uint64(r.Intn(200))
			buf := []byte(fmt.Sprintf("%08d", price))
			f.Write(core.KV{Key: "ETH-USD", Value: buf})
		}
		if (i+1)%*epoch == 0 {
			rec, _ := f.DO.Set().Get("ETH-USD")
			g := f.FeedGas()
			fmt.Printf("epoch %3d | state=%-2s | gas/op %7.0f | height %d\n",
				(i+1) / *epoch, rec.State, float64(g-lastGas)/float64(*epoch), c.Height())
			lastGas = g
		}
	}
	fmt.Printf("\nresults: delivered=%d notFound=%d feedGas=%d totalGas=%d\n",
		f.Delivered(), f.NotFound(), f.FeedGas(), c.TotalGas())
	rec, ok := f.DO.Set().Get("ETH-USD")
	if ok {
		fmt.Printf("final record state: %s (replicated on-chain: %v)\n", rec.State, rec.State == ads.R)
	}
	return nil
}

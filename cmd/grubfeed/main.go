// Command grubfeed runs an end-to-end GRuB feed demo on the simulated
// chain: it feeds a drifting price stream, issues reads with a shifting
// read/write mix, and reports the replication decisions and Gas as they
// happen.
//
// With -load it instead becomes a gateway load driver: it replays YCSB
// workloads against a grubd gateway over HTTP from many concurrent clients
// and reports ops/sec and per-feed gas/op. Pointed at nothing (-gateway ""),
// it starts an in-process gateway first, so `grubfeed -load` works
// standalone.
//
// With -verify it drives the authenticated read path instead: concurrent
// VerifyingClient light clients issue point reads, absence queries and
// range scans against a feed and re-verify every Merkle proof against the
// gateway's advertised roots, reporting verified ops/sec and proof bytes
// per op. A single rejected proof fails the run — the gateway is untrusted
// on this path. With -replicas the verified readers spread round-robin
// across follower gateways (grubd -follow) instead of the leader, after
// waiting for each replica to catch up — the replicated read scale-out
// path; writes still go to -gateway.
//
// Usage:
//
//	grubfeed [-ops 256] [-policy memoryless|memorizing|bl1|bl2] [-k 2]
//	grubfeed -load [-gateway http://host:8080] [-feeds 8] [-clients 32]
//	         [-batches 8] [-batch 16] [-workload A] [-records 64] [-shards 4]
//	grubfeed -verify [-gateway http://host:8080] [-clients 32] [-reads 64]
//	         [-records 64] [-shards 4]
//	         [-replicas http://f1:8081,http://f2:8082]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"grub/internal/ads"
	"grub/internal/chain"
	"grub/internal/core"
	"grub/internal/gas"
	"grub/internal/policy"
	"grub/internal/server"
	"grub/internal/sim"
	"grub/internal/workload/ycsb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "grubfeed:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("grubfeed", flag.ContinueOnError)
	ops := fs.Int("ops", 256, "operations to drive (demo mode)")
	polName := fs.String("policy", "memoryless", "replication policy: memoryless|memorizing|bl1|bl2")
	k := fs.Int("k", 2, "policy parameter K")
	epoch := fs.Int("epoch", 16, "operations per epoch")
	load := fs.Bool("load", false, "replay YCSB against a gateway instead of the demo")
	verify := fs.Bool("verify", false, "drive verified reads through the authenticated read path instead of the demo")
	gateway := fs.String("gateway", "", "gateway URL for -load/-verify; empty starts an in-process gateway")
	feeds := fs.Int("feeds", 8, "feeds to create (-load)")
	clients := fs.Int("clients", 32, "concurrent clients (-load/-verify)")
	batches := fs.Int("batches", 8, "batches per client (-load)")
	batch := fs.Int("batch", 16, "ops per batch (-load)")
	workloadName := fs.String("workload", "A", "YCSB workload letter (-load)")
	records := fs.Int("records", 64, "preloaded records per feed (-load/-verify)")
	shards := fs.Int("shards", 1, "shards per feed: hash-partition each feed's keyspace (-load/-verify)")
	reads := fs.Int("reads", 64, "verified reads per client (-verify)")
	replicas := fs.String("replicas", "", "comma-separated follower URLs to spread verified readers across (-verify)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *load:
		return runLoad(w, loadConfig{
			gateway: *gateway, feeds: *feeds, clients: *clients,
			batches: *batches, batch: *batch, workload: *workloadName,
			records: *records, policy: *polName, k: *k, epoch: *epoch,
			shards: *shards,
		})
	case *verify:
		var replicaURLs []string
		for _, u := range strings.Split(*replicas, ",") {
			if u = strings.TrimSpace(u); u != "" {
				replicaURLs = append(replicaURLs, u)
			}
		}
		return runVerify(w, verifyConfig{
			gateway: *gateway, clients: *clients, reads: *reads,
			records: *records, shards: *shards, policy: *polName,
			k: *k, epoch: *epoch, replicas: replicaURLs,
		})
	}
	return runDemo(w, *ops, *polName, *k, *epoch)
}

func runDemo(w io.Writer, ops int, polName string, k, epoch int) error {
	var pol policy.Policy
	switch polName {
	case "memoryless":
		pol = policy.NewMemoryless(k)
	case "memorizing":
		pol = policy.NewMemorizing(k, 1)
	case "bl1":
		pol = policy.Never{}
	case "bl2":
		pol = policy.Always{}
	default:
		return fmt.Errorf("unknown policy %q", polName)
	}

	c := chain.New(sim.NewClock(0), chain.DefaultParams(), gas.DefaultSchedule())
	f := core.NewFeed(c, pol, core.Options{EpochOps: epoch})
	fmt.Fprintf(w, "GRuB feed demo: policy=%s epoch=%d ops=%d\n\n", pol.Name(), epoch, ops)

	r := sim.NewRand(1)
	price := uint64(200_00)
	lastGas := f.FeedGas()
	for i := 0; i < ops; i++ {
		// Phase-shifted mix: write-heavy first half, read-heavy second.
		readChance := 0.2
		if i > ops/2 {
			readChance = 0.9
		}
		if r.Float64() < readChance {
			if err := f.Read("ETH-USD"); err != nil {
				return err
			}
		} else {
			price += uint64(r.Intn(200))
			buf := []byte(fmt.Sprintf("%08d", price))
			f.Write(core.KV{Key: "ETH-USD", Value: buf})
		}
		if (i+1)%epoch == 0 {
			rec, _ := f.DO.Set().Get("ETH-USD")
			g := f.FeedGas()
			fmt.Fprintf(w, "epoch %3d | state=%-2s | gas/op %7.0f | height %d\n",
				(i+1)/epoch, rec.State, float64(g-lastGas)/float64(epoch), c.Height())
			lastGas = g
		}
	}
	fmt.Fprintf(w, "\nresults: delivered=%d notFound=%d feedGas=%d totalGas=%d\n",
		f.Delivered(), f.NotFound(), f.FeedGas(), c.TotalGas())
	rec, ok := f.DO.Set().Get("ETH-USD")
	if ok {
		fmt.Fprintf(w, "final record state: %s (replicated on-chain: %v)\n", rec.State, rec.State == ads.R)
	}
	return nil
}

type loadConfig struct {
	gateway        string
	feeds, clients int
	batches, batch int
	workload       string
	records        int
	policy         string
	k, epoch       int
	shards         int
}

// runLoad replays YCSB batches against a gateway from N concurrent clients
// (the fan-out itself lives in server.RunLoad, shared with the bench
// experiment).
func runLoad(w io.Writer, cfg loadConfig) error {
	spec, err := ycsb.SpecByName(cfg.workload)
	if err != nil {
		return err
	}
	url := cfg.gateway
	if url == "" {
		// Standalone mode: bring up an in-process gateway on loopback.
		var shutdown func()
		url, shutdown, err = server.StartLocal()
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(w, "started in-process gateway on %s\n", url)
	}
	fmt.Fprintf(w, "load: %d feeds x YCSB-%s (%d shards each), %d clients x %d batches x %d ops\n",
		cfg.feeds, spec.Name, max(cfg.shards, 1), cfg.clients, cfg.batches, cfg.batch)
	client := server.NewClient(url)
	info, err := client.Info()
	if err != nil {
		return fmt.Errorf("gateway info: %w", err)
	}
	res, err := server.RunLoad(client, server.LoadSpec{
		Prefix: "load", Feeds: cfg.feeds, Clients: cfg.clients,
		Batches: cfg.batches, BatchOps: cfg.batch, Records: cfg.records,
		Workload: spec, Policy: cfg.policy, K: cfg.k, Shards: cfg.shards,
		EpochOps: cfg.epoch,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "\n%-8s %10s %10s %12s %10s\n", "feed", "ops", "batches", "gas/op", "replicas")
	for _, st := range res.Stats {
		fmt.Fprintf(w, "%-8s %10d %10d %12.0f %10d\n",
			st.ID, st.Ops, st.Batches, st.GasPerOp, st.Feed.Replicated)
	}
	fmt.Fprintf(w, "\nload results: %d ops in %v -> %.0f ops/sec, avg gas/op %.0f\n",
		res.LoadOps, res.Elapsed.Round(time.Millisecond), res.OpsPerSec(), res.AvgGasPerOp())
	fmt.Fprintf(w, "batch latency: p50 %v, p95 %v, p99 %v\n",
		res.LatencyQuantile(0.50).Round(time.Microsecond),
		res.LatencyQuantile(0.95).Round(time.Microsecond),
		res.LatencyQuantile(0.99).Round(time.Microsecond))
	if info.Persistent {
		snapshots, logged := 0, 0
		for _, st := range res.Stats {
			if st.Persist != nil {
				snapshots += st.Persist.Snapshots
				logged += st.Persist.LoggedBatches
			}
		}
		fmt.Fprintf(w, "persistence: data-dir %s, %d snapshots taken, %d batches in the durable log\n",
			info.DataDir, snapshots, logged)
	}
	return nil
}

type verifyConfig struct {
	gateway  string
	clients  int
	reads    int
	records  int
	shards   int
	policy   string
	k, epoch int
	// replicas spreads the verified readers round-robin across these
	// follower URLs (writes still go to the gateway). Empty = read from
	// the gateway itself.
	replicas []string
}

// replicaCatchUpTimeout bounds how long -verify waits for each replica to
// replicate the freshly preloaded feed before reading from it.
const replicaCatchUpTimeout = 30 * time.Second

// waitReplicas blocks until every replica's per-shard publication sequence
// has reached the leader's, i.e. the preloaded state is fully replicated.
func waitReplicas(w io.Writer, leader *server.Client, replicas []string, feedID string) error {
	want, err := leader.Roots(feedID)
	if err != nil {
		return fmt.Errorf("leader roots: %w", err)
	}
	deadline := time.Now().Add(replicaCatchUpTimeout)
	for _, url := range replicas {
		rc := server.NewClient(url)
		for {
			roots, err := rc.Roots(feedID)
			if err == nil && len(roots) == len(want) {
				behind := false
				for i := range want {
					if roots[i].Seq < want[i].Seq {
						behind = true
						break
					}
				}
				if !behind {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replica %s did not catch up on feed %q within %v (last err: %v)",
					url, feedID, replicaCatchUpTimeout, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		fmt.Fprintf(w, "replica %s caught up on %q\n", url, feedID)
	}
	return nil
}

// runVerify drives the authenticated read path: it preloads a feed, then
// fans verified point reads (one in four for a key that does not exist, so
// absence proofs are exercised) and one verified range scan per client,
// re-checking every Merkle proof against the gateway's advertised roots.
func runVerify(w io.Writer, cfg verifyConfig) error {
	if cfg.clients < 1 || cfg.reads < 1 || cfg.records < 2 {
		return fmt.Errorf("verify needs -clients >= 1, -reads >= 1, -records >= 2 (got %d/%d/%d)",
			cfg.clients, cfg.reads, cfg.records)
	}
	url := cfg.gateway
	if url == "" {
		var shutdown func()
		var err error
		url, shutdown, err = server.StartLocal()
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(w, "started in-process gateway on %s\n", url)
	}
	admin := server.NewClient(url)
	const feedID = "verified"
	if err := admin.CreateFeed(server.FeedConfig{
		ID: feedID, Policy: cfg.policy, K: cfg.k,
		Shards: cfg.shards, EpochOps: cfg.epoch,
	}); err != nil {
		return err
	}
	keys := make([]string, cfg.records)
	var preload []server.Op
	for i := range keys {
		keys[i] = fmt.Sprintf("user%04d", i)
		preload = append(preload, server.Op{Type: "write", Key: keys[i], Value: []byte(fmt.Sprintf("value-%d", i))})
	}
	if _, err := admin.Do(feedID, preload); err != nil {
		return err
	}

	readFrom := []string{url}
	if len(cfg.replicas) > 0 {
		if err := waitReplicas(w, admin, cfg.replicas, feedID); err != nil {
			return err
		}
		readFrom = cfg.replicas
	}

	fmt.Fprintf(w, "verify: %d light clients x %d reads + 1 range over %d records (%d shards, %d read node(s))\n",
		cfg.clients, cfg.reads, cfg.records, max(cfg.shards, 1), len(readFrom))
	var wg sync.WaitGroup
	errc := make(chan error, cfg.clients)
	vcs := make([]*server.VerifyingClient, cfg.clients)
	start := time.Now()
	for ci := 0; ci < cfg.clients; ci++ {
		vcs[ci] = server.NewVerifyingClient(readFrom[ci%len(readFrom)])
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			vc := vcs[ci]
			r := sim.NewRand(uint64(ci + 1))
			for i := 0; i < cfg.reads; i++ {
				key := keys[r.Intn(len(keys))]
				if i%4 == 3 {
					key = fmt.Sprintf("ghost%04d", r.Intn(1<<16)) // absence proof
				}
				if _, err := vc.Get(feedID, key); err != nil {
					errc <- err
					return
				}
			}
			lo := keys[r.Intn(len(keys)/2)]
			if _, err := vc.Range(feedID, lo, lo+"~"); err != nil {
				errc <- err
			}
		}(ci)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return fmt.Errorf("verification failed (untrusted gateway?): %w", err)
	}
	elapsed := time.Since(start)

	var verified, proofBytes int64
	for _, vc := range vcs {
		v, pb := vc.VerifiedStats()
		verified += v
		proofBytes += pb
	}
	fmt.Fprintf(w, "\nverify results: %d proofs verified in %v -> %.0f verified ops/sec, %.0f proof bytes/op\n",
		verified, elapsed.Round(time.Millisecond), float64(verified)/elapsed.Seconds(),
		float64(proofBytes)/float64(max(int(verified), 1)))
	roots, err := admin.Roots(feedID)
	if err != nil {
		return err
	}
	for _, ri := range roots {
		fmt.Fprintf(w, "shard %d root %s (%d records, height %d, seq %d)\n",
			ri.Shard, ri.Root, ri.Count, ri.Height, ri.Seq)
	}
	return nil
}

package main

import "testing"

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "table1", "-scale", "0.05"}); err != nil {
		t.Fatalf("-run table1: %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNoAction(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no-op invocation accepted")
	}
}

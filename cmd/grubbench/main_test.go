package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "table1", "-scale", "0.05"}); err != nil {
		t.Fatalf("-run table1: %v", err)
	}
}

// TestJSONReport runs the serving benchmarks with -json and checks the
// report carries the throughput metrics the CI artifact tracks.
func TestJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-run", "shard", "-scale", "0.02", "-json", path}); err != nil {
		t.Fatalf("-run shard -json: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "shard" {
		t.Fatalf("report experiments = %+v, want [shard]", rep.Experiments)
	}
	e := rep.Experiments[0]
	if e.ElapsedSec <= 0 {
		t.Errorf("elapsedSec = %v, want > 0", e.ElapsedSec)
	}
	if e.Metrics["shards4.opsPerSec"] <= 0 || e.Metrics["shards4.gasPerOp"] <= 0 {
		t.Errorf("shard metrics missing: %+v", e.Metrics)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNoAction(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no-op invocation accepted")
	}
}

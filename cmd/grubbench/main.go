// Command grubbench runs the paper-reproduction experiments: one per table
// and figure of the GRuB evaluation, plus the serving-layer benchmarks
// (gateway, shard).
//
// With -json the per-experiment metrics (elapsed seconds and, where the
// experiment measures them, ops/sec and gas/op) are also written to a JSON
// file; `make bench-smoke` uses this to produce BENCH_smoke.json and the CI
// uploads it as an artifact, so the perf trajectory is tracked per PR.
//
// Usage:
//
//	grubbench -list
//	grubbench -run fig7 [-scale 0.25] [-seed 42]
//	grubbench -all [-scale 0.1] [-json BENCH_smoke.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"grub/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "grubbench:", err)
		os.Exit(1)
	}
}

// expReport is one experiment's entry in the -json output.
type expReport struct {
	ID         string             `json:"id"`
	Title      string             `json:"title"`
	ElapsedSec float64            `json:"elapsedSec"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// benchReport is the -json file shape.
type benchReport struct {
	Scale       float64     `json:"scale"`
	Seed        uint64      `json:"seed"`
	Experiments []expReport `json:"experiments"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("grubbench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments and exit")
	id := fs.String("run", "", "experiment id to run (see -list)")
	all := fs.Bool("all", false, "run every experiment")
	scale := fs.Float64("scale", 1.0, "workload scale (1.0 = paper scale)")
	seed := fs.Uint64("seed", 42, "trace seed")
	jsonPath := fs.String("json", "", "also write per-experiment metrics JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range bench.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var exps []bench.Experiment
	switch {
	case *all:
		exps = bench.Registry
	case *id != "":
		e, err := bench.ByID(*id)
		if err != nil {
			return err
		}
		exps = []bench.Experiment{e}
	default:
		return fmt.Errorf("nothing to do: pass -list, -run <id> or -all")
	}

	report := benchReport{Scale: *scale, Seed: *seed}
	for _, e := range exps {
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		rep := expReport{ID: e.ID, Title: e.Title, Metrics: map[string]float64{}}
		cfg := bench.Config{
			W: os.Stdout, Scale: *scale, Seed: *seed,
			Metric: func(name string, v float64) { rep.Metrics[name] = v },
		}
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		elapsed := time.Since(start)
		rep.ElapsedSec = elapsed.Seconds()
		report.Experiments = append(report.Experiments, rep)
		fmt.Printf("(%s in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d experiments)\n", *jsonPath, len(report.Experiments))
	}
	return nil
}

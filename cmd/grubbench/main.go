// Command grubbench runs the paper-reproduction experiments: one per table
// and figure of the GRuB evaluation.
//
// Usage:
//
//	grubbench -list
//	grubbench -run fig7 [-scale 0.25] [-seed 42]
//	grubbench -all [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"grub/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "grubbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("grubbench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments and exit")
	id := fs.String("run", "", "experiment id to run (see -list)")
	all := fs.Bool("all", false, "run every experiment")
	scale := fs.Float64("scale", 1.0, "workload scale (1.0 = paper scale)")
	seed := fs.Uint64("seed", 42, "trace seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range bench.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}
	cfg := bench.Config{W: os.Stdout, Scale: *scale, Seed: *seed}
	if *all {
		for _, e := range bench.Registry {
			fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
			start := time.Now()
			if err := e.Run(cfg); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		return nil
	}
	if *id == "" {
		return fmt.Errorf("nothing to do: pass -list, -run <id> or -all")
	}
	e, err := bench.ByID(*id)
	if err != nil {
		return err
	}
	fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
	return e.Run(cfg)
}

// Command grubbench runs the paper-reproduction experiments: one per table
// and figure of the GRuB evaluation, plus the serving-layer benchmarks
// (gateway, shard).
//
// With -json the per-experiment metrics (elapsed seconds and, where the
// experiment measures them, ops/sec and gas/op) are also written to a JSON
// file; `make bench-smoke` uses this to produce BENCH_smoke.json and the CI
// uploads it as an artifact, so the perf trajectory is tracked per PR.
//
// Timing discipline: each experiment runs -warmup discarded warmup
// iterations (JIT-warm caches, page-faulted working set), then is measured
// repeatedly until the cumulative measured time reaches -min-time or -max-runs
// is hit. The JSON carries per-metric mean, standard deviation, variance and
// interpolated p50/p95/p99 across the measured runs, so a regression — mean
// shift or tail-only — is distinguishable from noise.
//
// Usage:
//
//	grubbench -list
//	grubbench -run fig7 [-scale 0.25] [-seed 42]
//	grubbench -all [-scale 0.1] [-json BENCH_smoke.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"grub/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "grubbench:", err)
		os.Exit(1)
	}
}

// metricStat summarizes one metric across the measured runs: mean/spread
// plus interpolated percentiles over the run samples, so a tail regression
// is visible even when the mean holds.
type metricStat struct {
	Mean     float64 `json:"mean"`
	StdDev   float64 `json:"stddev"`
	Variance float64 `json:"variance"`
	P50      float64 `json:"p50"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
}

// expReport is one experiment's entry in the -json output. Metrics holds the
// per-metric means (the shape older tooling reads); MetricStats adds the
// spread.
type expReport struct {
	ID            string                `json:"id"`
	Title         string                `json:"title"`
	Runs          int                   `json:"runs"`
	ElapsedSec    float64               `json:"elapsedSec"` // mean per run
	ElapsedStdDev float64               `json:"elapsedStdDevSec"`
	Metrics       map[string]float64    `json:"metrics,omitempty"`
	MetricStats   map[string]metricStat `json:"metricStats,omitempty"`
}

// benchReport is the -json file shape.
type benchReport struct {
	Scale       float64     `json:"scale"`
	Seed        uint64      `json:"seed"`
	Warmup      int         `json:"warmup"`
	Experiments []expReport `json:"experiments"`
}

// stats folds a sample set into (mean, stddev, variance, percentiles). The
// variance is the population variance of the observed runs.
func stats(xs []float64) metricStat {
	if len(xs) == 0 {
		return metricStat{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	variance := sq / float64(len(xs))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return metricStat{
		Mean: mean, StdDev: math.Sqrt(variance), Variance: variance,
		P50: quantile(sorted, 0.50), P95: quantile(sorted, 0.95), P99: quantile(sorted, 0.99),
	}
}

// quantile interpolates the q-quantile over an ascending-sorted sample set.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	rank := q * float64(n-1)
	lo := int(rank)
	if lo+1 >= n {
		return sorted[n-1]
	}
	frac := rank - float64(lo)
	return sorted[lo] + (sorted[lo+1]-sorted[lo])*frac
}

// measure runs one experiment with warmup iterations and a minimum
// cumulative measurement duration, collecting per-run metric samples. Only
// the first measured run writes the report to w (the runs are identical
// modulo timing).
func measure(e bench.Experiment, w io.Writer, scale float64, seed uint64, warmup int, minTime time.Duration, maxRuns int) (expReport, error) {
	rep := expReport{ID: e.ID, Title: e.Title}
	for i := 0; i < warmup; i++ {
		if err := e.Run(bench.Config{W: io.Discard, Scale: scale, Seed: seed}); err != nil {
			return rep, err
		}
	}
	samples := map[string][]float64{}
	var elapsed []float64
	var total time.Duration
	for run := 0; run < maxRuns && (run == 0 || total < minTime); run++ {
		out := io.Discard
		if run == 0 {
			out = w
		}
		cfg := bench.Config{
			W: out, Scale: scale, Seed: seed,
			Metric: func(name string, v float64) { samples[name] = append(samples[name], v) },
		}
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			return rep, err
		}
		d := time.Since(start)
		total += d
		elapsed = append(elapsed, d.Seconds())
	}
	rep.Runs = len(elapsed)
	es := stats(elapsed)
	rep.ElapsedSec, rep.ElapsedStdDev = es.Mean, es.StdDev
	if len(samples) > 0 {
		rep.Metrics = map[string]float64{}
		rep.MetricStats = map[string]metricStat{}
		for name, xs := range samples {
			s := stats(xs)
			rep.Metrics[name] = s.Mean
			rep.MetricStats[name] = s
		}
	}
	return rep, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("grubbench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments and exit")
	id := fs.String("run", "", "experiment id to run (see -list)")
	all := fs.Bool("all", false, "run every experiment")
	scale := fs.Float64("scale", 1.0, "workload scale (1.0 = paper scale)")
	seed := fs.Uint64("seed", 42, "trace seed")
	warmup := fs.Int("warmup", 1, "discarded warmup iterations per experiment")
	minTime := fs.Duration("min-time", 200*time.Millisecond, "minimum cumulative measured time per experiment")
	maxRuns := fs.Int("max-runs", 5, "maximum measured runs per experiment")
	jsonPath := fs.String("json", "", "also write per-experiment metrics JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range bench.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *warmup < 0 {
		*warmup = 0
	}
	if *maxRuns < 1 {
		*maxRuns = 1
	}

	var exps []bench.Experiment
	switch {
	case *all:
		exps = bench.Registry
	case *id != "":
		e, err := bench.ByID(*id)
		if err != nil {
			return err
		}
		exps = []bench.Experiment{e}
	default:
		return fmt.Errorf("nothing to do: pass -list, -run <id> or -all")
	}

	report := benchReport{Scale: *scale, Seed: *seed, Warmup: *warmup}
	for _, e := range exps {
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		rep, err := measure(e, os.Stdout, *scale, *seed, *warmup, *minTime, *maxRuns)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		report.Experiments = append(report.Experiments, rep)
		fmt.Printf("(%s: %d runs, %.3fs ± %.3fs per run)\n\n", e.ID, rep.Runs, rep.ElapsedSec, rep.ElapsedStdDev)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d experiments)\n", *jsonPath, len(report.Experiments))
	}
	return nil
}

package main

import "testing"

func TestKnownTraces(t *testing.T) {
	for _, kind := range []string{"ethprice", "btcrelay", "ratio"} {
		if err := run([]string{"-trace", kind, "-writes", "50", "-ops", "50"}); err != nil {
			t.Errorf("trace %s: %v", kind, err)
		}
	}
}

func TestUnknownTrace(t *testing.T) {
	if err := run([]string{"-trace", "bogus"}); err == nil {
		t.Fatal("unknown trace kind accepted")
	}
}

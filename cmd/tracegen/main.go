// Command tracegen emits the synthetic workload traces used by the
// benchmark suite as CSV for external inspection or plotting.
//
// Usage:
//
//	tracegen -trace ethprice > ethprice.csv
//	tracegen -trace btcrelay -writes 5000 > btcrelay.csv
//	tracegen -trace ratio -ratio 4 -ops 1000 > ratio.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"grub/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	kind := fs.String("trace", "ethprice", "trace kind: ethprice | btcrelay | ratio")
	writes := fs.Int("writes", workload.EthPriceWrites, "number of writes (ethprice/btcrelay)")
	ratio := fs.Float64("ratio", 1, "read-to-write ratio (ratio)")
	ops := fs.Int("ops", 1024, "total operations (ratio)")
	valueBytes := fs.Int("value", 32, "value size in bytes")
	seed := fs.Uint64("seed", 42, "trace seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var trace []workload.Op
	switch *kind {
	case "ethprice":
		trace = workload.EthPriceOracle("ETH", *writes, *valueBytes, *seed)
	case "btcrelay":
		trace = workload.BtcRelay(*writes, *valueBytes, 6, *seed)
	case "ratio":
		trace = workload.RatioFraction("key", *ratio, *ops, *valueBytes, *seed)
	default:
		return fmt.Errorf("unknown trace kind %q", *kind)
	}
	fmt.Println("seq,op,key,value_bytes")
	for i, op := range trace {
		kindStr := "read"
		if op.Write {
			kindStr = "write"
		} else if op.ScanLen > 0 {
			kindStr = fmt.Sprintf("scan%d", op.ScanLen)
		}
		fmt.Printf("%d,%s,%s,%d\n", i, kindStr, op.Key, len(op.Value))
	}
	st := workload.Describe(trace)
	fmt.Fprintf(os.Stderr, "ops=%d writes=%d reads=%d scans=%d keys=%d\n",
		st.Ops, st.Writes, st.Reads, st.Scans, st.Keys)
	return nil
}

package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"grub/internal/server"
)

// TestGrubtopStandaloneFrame drives one frame against an in-process
// standalone gateway: the frame must carry the driven feed with a
// non-zero ops/sec without a cluster behind it.
func TestGrubtopStandaloneFrame(t *testing.T) {
	g := server.NewGateway()
	defer g.Close()
	if err := g.CreateFeed(server.FeedConfig{ID: "hot", Shards: 2}); err != nil {
		t.Fatal(err)
	}
	// The load EWMA only counts completed wall-clock seconds, so the
	// traffic has to straddle at least one second boundary to register.
	deadline := time.Now().Add(1300 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := g.Do("hot", []server.Op{{Type: "write", Key: "k", Value: []byte("v")}}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv := httptest.NewServer(server.NewHandler(g))
	defer srv.Close()

	var out strings.Builder
	err := run([]string{"-node", srv.URL, "-iterations", "1", "-no-clear"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	frame := out.String()
	if !strings.Contains(frame, "standalone gateway") {
		t.Errorf("frame missing standalone banner:\n%s", frame)
	}
	if !strings.Contains(frame, "hot") {
		t.Errorf("frame missing the driven feed:\n%s", frame)
	}
	if strings.Contains(frame, "no recent traffic") {
		t.Errorf("driven feed reported no traffic:\n%s", frame)
	}
}

// TestGrubtopUnreachable fails fast when the first frame cannot be
// fetched.
func TestGrubtopUnreachable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-node", "http://127.0.0.1:1", "-iterations", "1"}, &out); err == nil {
		t.Fatal("expected an error against an unreachable node")
	}
}

// Command grubtop is a terminal cluster-load viewer for grubd. It polls
// one node's GET /cluster/load and GET /cluster/status — any node will
// do, since heartbeats replicate every member's load digest — and renders
// the cluster's heat each frame: per-node throughput with digest
// freshness, the hottest feeds (cluster-wide EWMA ops/sec and gas/sec,
// with owner), heartbeat lag, and any halted shards. Pointed at a
// standalone gateway it degrades to a single-node feed-load view.
//
// Usage:
//
//	grubtop [-node http://host:8080] [-interval 2s] [-top 10]
//	grubtop -iterations 1 -no-clear   # one frame, scripting-friendly
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"grub/internal/cluster"
	"grub/internal/repl"
	"grub/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "grubtop:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("grubtop", flag.ContinueOnError)
	node := fs.String("node", "http://127.0.0.1:8080", "gateway or cluster node to poll")
	interval := fs.Duration("interval", 2*time.Second, "poll interval between frames")
	iterations := fs.Int("iterations", 0, "frames to render before exiting (0 = run until interrupted)")
	top := fs.Int("top", 10, "hottest feeds to show")
	noClear := fs.Bool("no-clear", false, "append frames instead of clearing the terminal")
	if err := fs.Parse(args); err != nil {
		return err
	}
	httpc := &http.Client{Timeout: 5 * time.Second}
	for i := 0; ; i++ {
		err := renderFrame(w, httpc, *node, *top, !*noClear)
		if err != nil {
			if i == 0 {
				return err // unreachable from the start: fail loudly
			}
			// Mid-run blips (node restarting, brief partition) keep the
			// viewer alive; the next frame usually recovers.
			fmt.Fprintf(w, "grubtop: %v\n", err)
		}
		if *iterations > 0 && i+1 >= *iterations {
			return nil
		}
		time.Sleep(*interval)
	}
}

func getJSON(httpc *http.Client, url string, v any) error {
	resp, err := httpc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.Unmarshal(data, v)
}

func renderFrame(w io.Writer, httpc *http.Client, node string, top int, clear bool) error {
	var load server.LoadResponse
	if err := getJSON(httpc, node+"/cluster/load", &load); err != nil {
		return err
	}
	var st cluster.Status
	if err := getJSON(httpc, node+"/cluster/status", &st); err != nil {
		return err
	}
	if clear {
		fmt.Fprint(w, "\x1b[2J\x1b[H")
	}
	fmt.Fprintf(w, "grubtop  %s  %s\n", node, time.Now().Format("15:04:05"))
	if st.Enabled {
		alive := 0
		for _, m := range st.Members {
			if m.Alive {
				alive++
			}
		}
		fmt.Fprintf(w, "cluster: %d/%d members alive, quorum=%v, epoch=%d\n",
			alive, len(st.Members), st.Quorum, st.Epoch)
	} else {
		fmt.Fprintf(w, "standalone gateway (no cluster)\n")
	}

	if len(load.Nodes) > 0 {
		fmt.Fprintln(w)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "NODE\tALIVE\tDIGEST\tFEEDS\tOPS/S\tGAS/S")
		for _, nl := range load.Nodes {
			ops, gas := 0.0, 0.0
			for _, fl := range nl.Loads {
				ops += fl.OpsPerSec
				gas += fl.GasPerSec
			}
			age := "live"
			switch {
			case nl.AgeMS < 0:
				age = "never"
			case !nl.Self:
				age = fmt.Sprintf("%dms", nl.AgeMS)
			}
			fmt.Fprintf(tw, "%s\t%v\t%s\t%d\t%.1f\t%.1f\n",
				nl.Node, nl.Alive, age, len(nl.Loads), ops, gas)
		}
		tw.Flush()
	}

	// Feed ownership and halted shards come from the status document.
	owner := make(map[string]string)
	type halt struct {
		feed  string
		shard int
		err   string
	}
	var halted []halt
	for _, fp := range st.Feeds {
		if !fp.Deleted {
			owner[fp.Feed] = fp.Owner
		}
		if fp.Tail == nil {
			continue
		}
		for _, ss := range fp.Tail.Shards {
			if ss.State == repl.StateHalted {
				halted = append(halted, halt{feed: fp.Feed, shard: ss.Shard, err: ss.Error})
			}
		}
	}

	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "FEED\tOPS/S\tGAS/S\tOWNER")
	feeds := load.Feeds
	if top > 0 && len(feeds) > top {
		feeds = feeds[:top]
	}
	for _, fl := range feeds {
		own := owner[fl.Feed]
		if own == "" && !st.Enabled {
			own = "local"
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%s\n", fl.Feed, fl.OpsPerSec, fl.GasPerSec, own)
	}
	tw.Flush()
	if len(feeds) == 0 {
		fmt.Fprintln(w, "(no recent traffic)")
	}

	for _, h := range halted {
		fmt.Fprintf(w, "HALTED %s/shard%d: %s\n", h.feed, h.shard, h.err)
	}
	return nil
}

// Command docscheck is the CI docs gate. It makes four guarantees:
//
//  1. Link check: every relative markdown link in README.md and docs/*.md
//     points at a file that exists (and, for #fragment links, at a heading
//     that exists, using GitHub's anchor slugging).
//  2. Route guard: every HTTP route registered in internal/server/http.go
//     is documented — docs/API.md must mention each route string verbatim.
//  3. Metrics lint: every metric name (a "grub_..." string literal in
//     non-test Go source under internal/ and cmd/) is documented — a newly
//     registered metric must land in docs/API.md before it ships.
//  4. Live exposition lint: an in-process gateway is booted, driven, and
//     scraped; its /metrics output must parse cleanly under the strict
//     obs exposition parser (well-formed HELP/TYPE headers, no duplicate
//     series, histogram suffixes resolving) and every grub_* family that
//     actually renders must be documented in docs/API.md — names built at
//     runtime can't slip past the string-literal scan.
//
// It prints each problem and exits non-zero if any were found. Run it from
// the repository root (CI does), or pass the root as the only argument.
package main

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"

	"grub/internal/obs"
	"grub/internal/server"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	problems, err := run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	live, err := checkLiveExposition(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	problems = append(problems, live...)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "docscheck:", p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: docs are consistent")
}

// run performs both checks and returns the list of problems.
func run(root string) ([]string, error) {
	docs, err := docFiles(root)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, doc := range docs {
		ps, err := checkLinks(root, doc)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	ps, err := checkRoutes(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, ps...)
	ps, err = checkMetrics(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, ps...)
	return problems, nil
}

// docFiles lists the markdown files under the docs gate: README.md plus
// everything in docs/.
func docFiles(root string) ([]string, error) {
	files := []string{filepath.Join(root, "README.md")}
	entries, err := os.ReadDir(filepath.Join(root, "docs"))
	if err != nil {
		return nil, fmt.Errorf("docs/ directory: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join(root, "docs", e.Name()))
		}
	}
	sort.Strings(files)
	return files, nil
}

// linkRe matches inline markdown links [text](target). Images and
// reference-style links are out of scope for this repo's docs.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkLinks verifies every relative link in one markdown file.
func checkLinks(root, path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rel, _ := filepath.Rel(root, path)
	var problems []string
	for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "mailto:") {
			continue // external links are not checked offline
		}
		file, frag, _ := strings.Cut(target, "#")
		dest := path
		if file != "" {
			dest = filepath.Join(filepath.Dir(path), file)
			if _, err := os.Stat(dest); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q: %s does not exist", rel, target, file))
				continue
			}
		}
		if frag != "" && strings.HasSuffix(dest, ".md") {
			ok, err := hasAnchor(dest, frag)
			if err != nil {
				return nil, err
			}
			if !ok {
				problems = append(problems, fmt.Sprintf("%s: broken link %q: no heading for #%s", rel, target, frag))
			}
		}
	}
	return problems, nil
}

// hasAnchor reports whether the markdown file has a heading whose GitHub
// anchor slug equals frag.
func hasAnchor(path, frag string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimSpace(strings.TrimLeft(line, "#"))
		if slugify(heading) == frag {
			return true, nil
		}
	}
	return false, nil
}

// slugify approximates GitHub's heading-anchor rules: lowercase, drop
// everything but letters, digits, spaces and hyphens, spaces to hyphens.
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}

// checkLiveExposition is the live half of the metrics lint (run() holds
// the static half; main() runs both, while the temp-root unit tests
// exercise run() alone since a synthetic tree has no gateway to boot).
// It starts an in-process gateway, drives traced batches through a
// sharded feed, scrapes GET /metrics, and validates the result: the
// exposition must parse under the strict obs parser, and every grub_*
// family it serves must be documented in docs/API.md.
func checkLiveExposition(root string) ([]string, error) {
	g := server.NewGateway()
	defer g.Close()
	if err := g.CreateFeed(server.FeedConfig{ID: "docscheck", Shards: 2}); err != nil {
		return nil, fmt.Errorf("live exposition: create feed: %w", err)
	}
	// SlowOp at 1ns traces every batch and exercises the slow-op logger
	// (and its drop counter) alongside the pipeline histograms.
	h := server.NewHandlerConfig(g, server.HandlerConfig{
		SlowOp: time.Nanosecond, SlowOpWriter: discard{},
	})
	for i := 0; i < 32; i++ {
		body := strings.NewReader(fmt.Sprintf(
			`{"ops":[{"type":"write","key":"k%d","value":"dg=="},{"type":"read","key":"k%d"}]}`, i, i))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/feeds/docscheck/ops", body))
		if rec.Code != 200 {
			return nil, fmt.Errorf("live exposition: drive batch: status %d: %s", rec.Code, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		return nil, fmt.Errorf("live exposition: scrape: status %d", rec.Code)
	}
	fams, err := obs.ParseExposition(rec.Body.String())
	if err != nil {
		return []string{fmt.Sprintf("live /metrics exposition is malformed: %v", err)}, nil
	}
	api, err := os.ReadFile(filepath.Join(root, "docs", "API.md"))
	if err != nil {
		return nil, fmt.Errorf("read docs/API.md: %w", err)
	}
	apiText := string(api)
	var problems []string
	for _, f := range fams {
		if strings.HasPrefix(f.Name, "grub_") && !strings.Contains(apiText, f.Name) {
			problems = append(problems,
				fmt.Sprintf("docs/API.md: live metric family %q is served but not documented", f.Name))
		}
	}
	return problems, nil
}

// discard swallows the slow-op lines the live lint provokes.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// routeRe matches the route strings registered on the gateway mux, e.g.
// mux.HandleFunc("POST /feeds/{id}/ops", ...).
var routeRe = regexp.MustCompile(`mux\.HandleFunc\("([A-Z]+ [^"]+)"`)

// checkRoutes asserts docs/API.md mentions every route registered in
// internal/server/http.go.
func checkRoutes(root string) ([]string, error) {
	src, err := os.ReadFile(filepath.Join(root, "internal", "server", "http.go"))
	if err != nil {
		return nil, fmt.Errorf("read handler source: %w", err)
	}
	matches := routeRe.FindAllStringSubmatch(string(src), -1)
	if len(matches) == 0 {
		return nil, fmt.Errorf("no routes found in internal/server/http.go — route regexp out of date?")
	}
	api, err := os.ReadFile(filepath.Join(root, "docs", "API.md"))
	if err != nil {
		return nil, fmt.Errorf("read docs/API.md: %w", err)
	}
	apiText := string(api)
	var problems []string
	for _, m := range matches {
		route := m[1]
		if !strings.Contains(apiText, route) {
			problems = append(problems, fmt.Sprintf("docs/API.md: route %q is registered but not documented", route))
		}
	}
	return problems, nil
}

// metricRe matches metric-name string literals, e.g. "grub_feed_ops_total".
var metricRe = regexp.MustCompile(`"(grub_[a-z][a-z0-9_]*)"`)

// checkMetrics asserts docs/API.md mentions every metric name that appears
// as a string literal in non-test Go source under internal/ and cmd/.
// Histogram families expand to _bucket/_sum/_count series at exposition
// time; documenting the family name satisfies the check.
func checkMetrics(root string) ([]string, error) {
	names := map[string]bool{}
	for _, dir := range []string{"internal", "cmd"} {
		base := filepath.Join(root, dir)
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range metricRe.FindAllStringSubmatch(string(src), -1) {
				names[m[1]] = true
			}
			return nil
		})
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
	}
	api, err := os.ReadFile(filepath.Join(root, "docs", "API.md"))
	if err != nil {
		return nil, fmt.Errorf("read docs/API.md: %w", err)
	}
	apiText := string(api)
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	var problems []string
	for _, name := range sorted {
		if !strings.Contains(apiText, name) {
			problems = append(problems, fmt.Sprintf("docs/API.md: metric %q is registered but not documented", name))
		}
	}
	return problems, nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot locates the repository root from the test's working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestRepoDocsAreConsistent runs the real gate against the real repo: this
// is the test CI's docs job executes, so a broken link or an undocumented
// route fails the build.
func TestRepoDocsAreConsistent(t *testing.T) {
	problems, err := run(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestLiveExpositionConsistent runs the live half of the metrics lint
// against the real gateway: the scrape must parse and every served
// grub_* family must be documented.
func TestLiveExpositionConsistent(t *testing.T) {
	problems, err := checkLiveExposition(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestCatchesBrokenLink pins that the checker actually detects problems.
func TestCatchesBrokenLink(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("README.md", "[missing](docs/NOPE.md) and [bad anchor](docs/API.md#nope)")
	write("docs/API.md", "# API\n\n`GET /feeds` only\n")
	write("internal/server/http.go",
		"package server\nfunc x() {\n\tmux.HandleFunc(\"GET /feeds\", nil)\n\tmux.HandleFunc(\"POST /feeds/{id}/ops\", nil)\n}\n")

	problems, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{"NOPE.md", "#nope", `route "POST /feeds/{id}/ops"`} {
		if !strings.Contains(joined, want) {
			t.Errorf("problems missing %q:\n%s", want, joined)
		}
	}
	if len(problems) != 3 {
		t.Errorf("got %d problems, want 3:\n%s", len(problems), joined)
	}
}

// TestCatchesUndocumentedMetric pins that the metrics lint flags a
// registered "grub_..." metric name missing from docs/API.md, tolerates
// documented ones, and ignores _test.go files.
func TestCatchesUndocumentedMetric(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("README.md", "")
	write("docs/API.md", "# API\n\n`GET /feeds` and `grub_documented_total`.\n")
	write("internal/server/http.go",
		"package server\nfunc x() {\n\tmux.HandleFunc(\"GET /feeds\", nil)\n}\n")
	write("internal/server/metrics.go",
		"package server\nconst a = \"grub_documented_total\"\nconst b = \"grub_missing_total\"\n")
	write("internal/server/metrics_test.go",
		"package server\nconst c = \"grub_testonly_total\"\n")

	problems, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	if !strings.Contains(joined, `metric "grub_missing_total"`) {
		t.Errorf("problems missing grub_missing_total:\n%s", joined)
	}
	if strings.Contains(joined, "grub_documented_total") || strings.Contains(joined, "grub_testonly_total") {
		t.Errorf("false positive:\n%s", joined)
	}
	if len(problems) != 1 {
		t.Errorf("got %d problems, want 1:\n%s", len(problems), joined)
	}
}

// TestSlugify pins the GitHub anchor rules the link check relies on.
func TestSlugify(t *testing.T) {
	for in, want := range map[string]string{
		"Persistence and recovery":             "persistence-and-recovery",
		"POST /feeds — create a feed":          "post-feeds--create-a-feed",
		"Data flow: one read, chain to client": "data-flow-one-read-chain-to-client",
	} {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

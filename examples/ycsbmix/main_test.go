package main

import (
	"bytes"
	"regexp"
	"strconv"
	"testing"
)

func TestYCSBMix(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, phase := range []string{"phase P1 (A)", "phase P2 (B)", "phase P3 (A)", "phase P4 (B)"} {
		if !bytes.Contains(buf.Bytes(), []byte(phase)) {
			t.Errorf("%s missing:\n%s", phase, out)
		}
	}
	m := regexp.MustCompile(`delivered=(\d+) notFound=(\d+) totalFeedGas=(\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("summary line missing:\n%s", out)
	}
	delivered, _ := strconv.Atoi(m[1])
	gas, _ := strconv.Atoi(m[3])
	if delivered == 0 {
		t.Error("no reads delivered")
	}
	// 512 preloaded records plus ~768 YCSB ops: the feed-layer gas must be
	// substantial but bounded.
	if gas < 1_000_000 || gas > 5_000_000_000 {
		t.Errorf("totalFeedGas = %d, outside sane range", gas)
	}
}

// YCSB mix: the paper's §5.2 macro-benchmark in miniature.
//
// A feed preloads a YCSB key space and then alternates workload phases
// (A: 50% reads, B: 95% reads), printing per-epoch Gas so the adaptive
// replication is visible converging to the cheaper configuration in each
// phase.
//
// Run with: go run ./examples/ycsbmix
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"grub/internal/chain"
	"grub/internal/core"
	"grub/internal/policy"
	"grub/internal/workload/ycsb"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	c := chain.NewDefault()
	feed := core.NewFeed(c, policy.NewMemoryless(2), core.Options{EpochOps: 16})

	const records = 512
	phases := []ycsb.Phase{
		{Spec: ycsb.WorkloadA, Ops: 192},
		{Spec: ycsb.WorkloadB, Ops: 192},
		{Spec: ycsb.WorkloadA, Ops: 192},
		{Spec: ycsb.WorkloadB, Ops: 192},
	}
	preload, phaseTraces := ycsb.Mixed(phases, records, 64, 99)

	for _, op := range preload {
		feed.DO.StageWrite(core.KV{Key: op.Key, Value: op.Value})
	}
	feed.FlushEpoch()
	fmt.Fprintf(w, "preloaded %d records; running 4 YCSB phases (A,B,A,B)\n\n", records)

	for pi, trace := range phaseTraces {
		series, err := feed.ProcessSeries(trace)
		if err != nil {
			return err
		}
		var sum float64
		for _, s := range series {
			sum += s.GasPerOp()
		}
		fmt.Fprintf(w, "phase P%d (%s): avg gas/op %8.0f over %d epochs\n",
			pi+1, phases[pi].Spec.Name, sum/float64(len(series)), len(series))
		feed.FlushEpoch()
	}
	fmt.Fprintf(w, "\ndelivered=%d notFound=%d totalFeedGas=%d\n",
		feed.Delivered(), feed.NotFound(), feed.FeedGas())
	return nil
}

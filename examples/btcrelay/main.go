// BtcRelay: the paper's §4.2 case study end to end.
//
// A simulated Bitcoin chain produces blocks; their headers flow onto the
// Ethereum-like chain through a GRuB side-chain feed; a Bitcoin-pegged ERC20
// token mints against SPV-verified deposits and burns against redeems, each
// verification reading six consecutive headers from the feed.
//
// Run with: go run ./examples/btcrelay
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	appbtcrelay "grub/internal/apps/btcrelay"
	"grub/internal/btc"
	"grub/internal/chain"
	"grub/internal/core"
	"grub/internal/policy"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	c := chain.NewDefault()
	// The BtcRelay feed runs GRuB with K=2 and a bounded replica budget
	// with LRU eviction (reusable on-chain slots, as in the paper).
	feed := core.NewFeed(c, policy.NewMemoryless(2), core.Options{EpochOps: 4, MaxReplicas: 8})
	pegged := appbtcrelay.New(c, "pegged-btc", "grub-manager")
	bitcoins := btc.NewChain()

	feedBlock := func(txs ...btc.Tx) btc.Block {
		b := bitcoins.Mine(txs)
		feed.Write(core.KV{Key: appbtcrelay.HeaderKey(b.Height), Value: b.Header.Encode()})
		return b
	}

	// A deposit lands on Bitcoin...
	deposit := appbtcrelay.DepositTx("alice", 125_000)
	depositBlock := feedBlock(deposit, btc.Tx("unrelated-payment"))
	// ...and gets buried under six confirmations, all fed to the relay.
	for i := 0; i < appbtcrelay.Confirmations; i++ {
		feedBlock(btc.Tx(fmt.Sprintf("filler-%d", i)))
	}
	feed.FlushEpoch()

	// Mint against the SPV proof of the deposit.
	proof, err := bitcoins.Prove(depositBlock.Height, 0)
	if err != nil {
		return err
	}
	if err := feed.ReadFrom("pegged-btc", "mint", appbtcrelay.MintArgs{Proof: proof}, proof.Size()); err != nil {
		return err
	}

	// Redeem half of it on Bitcoin and burn the pegged tokens.
	redeemBlock := feedBlock(appbtcrelay.RedeemTx("alice", 50_000))
	for i := 0; i < appbtcrelay.Confirmations; i++ {
		feedBlock(btc.Tx(fmt.Sprintf("filler2-%d", i)))
	}
	feed.FlushEpoch()
	rproof, err := bitcoins.Prove(redeemBlock.Height, 0)
	if err != nil {
		return err
	}
	if err := feed.ReadFrom("pegged-btc", "burn", appbtcrelay.BurnArgs{Proof: rproof}, rproof.Size()); err != nil {
		return err
	}

	bal, err := c.View(pegged.Token().Address(), "balanceOf", chain.Address("alice"))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "bitcoin height:            %d\n", bitcoins.Height())
	fmt.Fprintf(w, "minted / burned (sats):    %d / %d\n", pegged.Minted, pegged.Burned)
	fmt.Fprintf(w, "alice's pegged balance:    %v\n", bal)
	fmt.Fprintf(w, "feed-layer gas:            %d\n", feed.FeedGas())
	fmt.Fprintf(w, "pegged-token gas:          %d\n", c.GasOf("pegged-btc")+c.GasOf(pegged.Token().Address()))
	return nil
}

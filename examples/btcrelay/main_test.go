package main

import (
	"bytes"
	"regexp"
	"strconv"
	"testing"
)

func TestBtcRelay(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("minted / burned (sats):    125000 / 50000")) {
		t.Errorf("mint/burn totals wrong:\n%s", out)
	}
	if !bytes.Contains(buf.Bytes(), []byte("alice's pegged balance:    75000")) {
		t.Errorf("balance wrong:\n%s", out)
	}
	m := regexp.MustCompile(`feed-layer gas:\s+(\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("feed gas missing:\n%s", out)
	}
	gas, _ := strconv.Atoi(m[1])
	// ~15 header writes plus two 6-header SPV reads.
	if gas < 100_000 || gas > 100_000_000 {
		t.Errorf("feed-layer gas = %d, outside sane range", gas)
	}
}

package main

import (
	"bytes"
	"regexp"
	"strconv"
	"testing"
)

func TestStablecoin(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	issued := regexp.MustCompile(`SCoin issued/redeemed:\s+(\d+) / (\d+)`).FindStringSubmatch(out)
	if issued == nil {
		t.Fatalf("issue/redeem line missing:\n%s", out)
	}
	if n, _ := strconv.Atoi(issued[1]); n == 0 {
		t.Error("no SCoin ever issued")
	}
	for _, want := range []string{"final ETH price:", "alice's SCoin balance:", "total SCoin supply:"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("%q missing:\n%s", want, out)
		}
	}
	m := regexp.MustCompile(`feed-layer gas:\s+(\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("feed gas missing:\n%s", out)
	}
	gas, _ := strconv.Atoi(m[1])
	if gas < 21000 || gas > 1_000_000_000 {
		t.Errorf("feed-layer gas = %d, outside sane range", gas)
	}
}

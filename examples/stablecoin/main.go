// Stablecoin: the paper's §4.1 case study end to end.
//
// A GRuB price feed carries a drifting ETH/USD price; the SCoinIssuer
// contract issues and redeems a DAI-style stablecoin against it, reading the
// price through gGet callbacks (synchronous when the price record is
// replicated, asynchronous via deliver when it is not).
//
// Run with: go run ./examples/stablecoin
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"grub/internal/apps/scoin"
	"grub/internal/chain"
	"grub/internal/core"
	"grub/internal/policy"
	"grub/internal/sim"
	"grub/internal/workload"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	c := chain.NewDefault()
	feed := core.NewFeed(c, policy.NewMemoryless(1), core.Options{EpochOps: 8})
	issuer := scoin.New(c, "scoin-issuer", "grub-manager", "ETH")

	// Drive a piece of the regenerated ethPriceOracle workload: every
	// write is a price update; every read is a stablecoin operation that
	// consumes the price.
	trace := workload.EthPriceOracle("ETH", 60, 8, 2024)
	price := uint64(180_00)
	r := sim.NewRand(7)
	issueNext := true
	for _, op := range trace {
		if op.Write {
			price += uint64(r.Intn(120))
			feed.Write(core.KV{Key: "ETH", Value: scoin.EncodePrice(price)})
			// Close the epoch so the price is on the SP (and its digest
			// on-chain) before consumers read it; within an epoch reads
			// see the previous price (epoch-bounded freshness, §3.4).
			feed.FlushEpoch()
			continue
		}
		var err error
		if issueNext || issuer.Issued-issuer.Redeemed < 200 {
			err = feed.ReadFrom("scoin-issuer", "issue",
				scoin.IssueArgs{Buyer: "alice", EtherMilli: 2000}, 64)
		} else {
			err = feed.ReadFrom("scoin-issuer", "redeem",
				scoin.RedeemArgs{Seller: "alice", SCoin: 100}, 64)
		}
		issueNext = !issueNext
		if err != nil {
			return err
		}
	}
	feed.FlushEpoch()

	supply, err := c.View(issuer.Token().Address(), "totalSupply", nil)
	if err != nil {
		return err
	}
	bal, err := c.View(issuer.Token().Address(), "balanceOf", chain.Address("alice"))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "final ETH price:        $%d.%02d\n", price/100, price%100)
	fmt.Fprintf(w, "SCoin issued/redeemed:  %d / %d\n", issuer.Issued, issuer.Redeemed)
	fmt.Fprintf(w, "alice's SCoin balance:  %v\n", bal)
	fmt.Fprintf(w, "total SCoin supply:     %v\n", supply)
	fmt.Fprintf(w, "feed-layer gas:         %d\n", feed.FeedGas())
	fmt.Fprintf(w, "SCoinIssuer gas:        %d\n", c.GasOf("scoin-issuer")+c.GasOf(issuer.Token().Address()))
	return nil
}

// Quickstart: the smallest useful GRuB deployment.
//
// It wires a feed on the simulated chain, pushes one price update (gPuts),
// reads it back from a consumer contract (gGet with callback), and shows the
// workload-adaptive replication kicking in after repeated reads.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"grub/internal/ads"
	"grub/internal/chain"
	"grub/internal/core"
	"grub/internal/policy"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// A simulated Ethereum-like chain with the paper's Table 2 Gas
	// schedule, and a GRuB feed using the memoryless decision algorithm
	// with Equation 1's K=2.
	c := chain.NewDefault()
	feed := core.NewFeed(c, policy.NewMemoryless(2), core.Options{EpochOps: 4})

	// The data owner feeds a price update. Updates are batched per epoch
	// and land on the off-chain SP plus (as a digest) on the chain.
	feed.Write(core.KV{Key: "ETH-USD", Value: []byte("2150.75")})
	feed.FlushEpoch()

	// A consumer contract reads the price. The record is not replicated
	// yet, so this goes: request event -> SP watchdog -> deliver tx with
	// a Merkle proof -> on-chain verification -> callback.
	if err := feed.Read("ETH-USD"); err != nil {
		return err
	}
	fmt.Fprintf(w, "first read (off-chain, authenticated): %s\n", feed.LastValue["ETH-USD"])

	// Read twice more: the memoryless policy promotes the record to R
	// after K=2 consecutive reads, and the actuator replicates it on
	// chain at the next epoch boundary.
	for i := 0; i < 2; i++ {
		if err := feed.Read("ETH-USD"); err != nil {
			return err
		}
	}
	feed.FlushEpoch()
	rec, _ := feed.DO.Set().Get("ETH-USD")
	fmt.Fprintf(w, "after %d reads the record is %s (replicated: %v)\n", 3, rec.State, rec.State == ads.R)

	// Replicated reads are now served from contract storage: compare the
	// Gas of one more read against the first one.
	before := feed.FeedGas()
	if err := feed.Read("ETH-USD"); err != nil {
		return err
	}
	fmt.Fprintf(w, "replicated read cost: %d gas (an off-chain read costs >21000)\n", feed.FeedGas()-before)
	fmt.Fprintf(w, "total feed gas: %d, chain height: %d\n", feed.FeedGas(), c.Height())
	return nil
}

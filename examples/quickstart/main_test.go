package main

import (
	"bytes"
	"regexp"
	"strconv"
	"testing"
)

func TestQuickstart(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("first read (off-chain, authenticated): 2150.75")) {
		t.Errorf("first read value missing:\n%s", out)
	}
	if !bytes.Contains(buf.Bytes(), []byte("replicated: true")) {
		t.Errorf("record never replicated:\n%s", out)
	}
	m := regexp.MustCompile(`total feed gas: (\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("gas total missing:\n%s", out)
	}
	gas, _ := strconv.Atoi(m[1])
	// One update plus a handful of reads: well above the 21000 base tx
	// cost, nowhere near a million.
	if gas < 21000 || gas > 2_000_000 {
		t.Errorf("total feed gas = %d, outside sane range", gas)
	}
}

GO ?= go
GOFMT ?= gofmt

.PHONY: all build test race vet fmt-check bench-smoke bench-full fuzz-smoke docs-check check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Formatting gate: fail (and list the offenders) if any tracked Go file is
# not gofmt-clean.
fmt-check:
	@unformatted="$$($(GOFMT) -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# One fast pass over every registered experiment (including the gateway,
# shard, persistence and authenticated-read serving benchmarks) at reduced
# scale, writing the machine-readable per-experiment metrics to
# BENCH_smoke.json (uploaded as a CI artifact). Registry sanity is already
# covered by TestRegistryGolden under `make race`.
bench-smoke:
	$(GO) run ./cmd/grubbench -all -scale 0.05 -json BENCH_smoke.json

# The full-scale pass: every experiment at scale 1.0 — 20x the smoke sizes
# (the storage-engine experiment, for one, runs its point-miss phases over
# 200k keys instead of 10k). Results land in BENCH_full.json; the nightly
# scheduled CI job runs this and uploads the file as an artifact.
bench-full:
	$(GO) run ./cmd/grubbench -all -scale 1.0 -json BENCH_full.json

# Bounded fuzz pass over the durable formats, short enough for CI (run with
# a bigger FUZZTIME locally to dig):
#   - persistent ADS: random op streams against a map model with proof
#     verification at every step;
#   - kvstore SSTables: corrupted/truncated table bytes must error at open,
#     never panic or serve wrong values;
#   - kvstore bloom filters: malformed encodings must decode-error or answer
#     membership safely.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test ./internal/ads -run '^$$' -fuzz FuzzSetOps -fuzztime $(FUZZTIME)
	$(GO) test ./internal/kvstore -run '^$$' -fuzz FuzzSSTableOpen -fuzztime $(FUZZTIME)
	$(GO) test ./internal/kvstore -run '^$$' -fuzz FuzzBloomDecode -fuzztime $(FUZZTIME)

# Docs gate: relative markdown links in README.md and docs/ must resolve,
# docs/API.md must document every route registered on the gateway mux, and
# every registered metric name (grub_* string literal in non-test source)
# must be documented in docs/API.md. A live half then boots a gateway,
# scrapes /metrics, and requires the exposition to parse strictly with
# every served grub_* family documented — catching names built at runtime.
docs-check:
	$(GO) run ./tools/docscheck

check: build vet fmt-check race bench-smoke docs-check

clean:
	$(GO) clean ./...
	rm -f BENCH_smoke.json BENCH_full.json

GO ?= go
GOFMT ?= gofmt

.PHONY: all build test race vet fmt-check bench-smoke fuzz-smoke docs-check check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Formatting gate: fail (and list the offenders) if any tracked Go file is
# not gofmt-clean.
fmt-check:
	@unformatted="$$($(GOFMT) -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# One fast pass over every registered experiment (including the gateway,
# shard, persistence and authenticated-read serving benchmarks) at reduced
# scale, writing the machine-readable per-experiment metrics to
# BENCH_smoke.json (uploaded as a CI artifact). Registry sanity is already
# covered by TestRegistryGolden under `make race`.
bench-smoke:
	$(GO) run ./cmd/grubbench -all -scale 0.05 -json BENCH_smoke.json

# Bounded fuzz pass over the persistent ADS: random op streams checked
# against a map model with proof verification at every step. Short enough
# for CI; run with a bigger FUZZTIME locally to dig.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test ./internal/ads -run '^$$' -fuzz FuzzSetOps -fuzztime $(FUZZTIME)

# Docs gate: relative markdown links in README.md and docs/ must resolve,
# docs/API.md must document every route registered on the gateway mux, and
# every registered metric name (grub_* string literal in non-test source)
# must be documented in docs/API.md.
docs-check:
	$(GO) run ./tools/docscheck

check: build vet fmt-check race bench-smoke docs-check

clean:
	$(GO) clean ./...
	rm -f BENCH_smoke.json

GO ?= go

.PHONY: all build test race vet bench-smoke docs-check check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One fast pass over every registered experiment (including the gateway and
# shard serving benchmarks) at reduced scale, writing the machine-readable
# per-experiment metrics to BENCH_smoke.json (uploaded as a CI artifact).
# Registry sanity is already covered by TestRegistryGolden under `make race`.
bench-smoke:
	$(GO) run ./cmd/grubbench -all -scale 0.05 -json BENCH_smoke.json

# Docs gate: relative markdown links in README.md and docs/ must resolve,
# and docs/API.md must document every route registered on the gateway mux.
docs-check:
	$(GO) run ./tools/docscheck

check: build vet race bench-smoke docs-check

clean:
	$(GO) clean ./...
	rm -f BENCH_smoke.json

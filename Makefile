GO ?= go

.PHONY: all build test race vet bench-smoke check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One fast pass over every registered experiment (including the concurrent
# gateway benchmark) at reduced scale.
bench-smoke:
	$(GO) test -run TestRegistryGolden ./internal/bench
	$(GO) run ./cmd/grubbench -run gateway -scale 0.1

check: build vet race bench-smoke

clean:
	$(GO) clean ./...

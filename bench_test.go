// Root-level benchmarks: one testing.B target per table and figure of the
// paper's evaluation. Each benchmark runs its experiment once per iteration
// at a reduced scale (the full-scale runs are produced by cmd/grubbench) and
// reports feed Gas per workload operation as a custom metric, which is the
// quantity every figure plots.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// or regenerate a single figure at full scale with:
//
//	go run ./cmd/grubbench -run fig7
package grub_test

import (
	"io"
	"testing"

	"grub/internal/bench"
)

// benchScale keeps a full `go test -bench=.` pass tractable on one core
// while preserving every experiment's shape. cmd/grubbench defaults to 1.0.
const benchScale = 0.12

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bench.Config{W: io.Discard, Scale: benchScale, Seed: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig2(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkFig6(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }
func BenchmarkFig16(b *testing.B)  { runExperiment(b, "fig16") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8a(b *testing.B)  { runExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)  { runExperiment(b, "fig8b") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12a(b *testing.B) { runExperiment(b, "fig12a") }
func BenchmarkFig12b(b *testing.B) { runExperiment(b, "fig12b") }
func BenchmarkFig13a(b *testing.B) { runExperiment(b, "fig13a") }
func BenchmarkFig13b(b *testing.B) { runExperiment(b, "fig13b") }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { runExperiment(b, "fig15") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkGatewayExperiment runs the serving-layer experiment: ops/sec and
// gas/op through the full HTTP gateway under concurrent clients.
func BenchmarkGatewayExperiment(b *testing.B) { runExperiment(b, "gateway") }

// BenchmarkShardExperiment runs the scatter-gather scaling experiment.
func BenchmarkShardExperiment(b *testing.B) { runExperiment(b, "shard") }

// BenchmarkPersistExperiment runs the durability experiment: WAL on/off
// throughput and recovery time vs log length.
func BenchmarkPersistExperiment(b *testing.B) { runExperiment(b, "persist") }

// BenchmarkReplExperiment runs the replication experiment: follower
// catch-up throughput and verified-read scale-out across followers.
func BenchmarkReplExperiment(b *testing.B) { runExperiment(b, "repl") }

// BenchmarkPublishExperiment runs the view-publication scaling microbench:
// per-batch publish cost at 1k vs 100k records must stay within 2x.
func BenchmarkPublishExperiment(b *testing.B) { runExperiment(b, "publish") }

// BenchmarkKVStoreExperiment runs the storage-engine microbench: bloom-filter
// miss speedup, record-cache hit throughput, and write-batch latency with
// background vs inline compaction.
func BenchmarkKVStoreExperiment(b *testing.B) { runExperiment(b, "kvstore") }

// BenchmarkLoadReportExperiment runs the load-accounting microbench: per-batch
// metering tax, heartbeat digest build cost and wire size, and /cluster/load
// latency with ~1k metered feeds.
func BenchmarkLoadReportExperiment(b *testing.B) { runExperiment(b, "loadreport") }
